//! Span/event recording into thread-local ring buffers, behind one
//! process-global enable flag.
//!
//! Design constraints, in order:
//!
//! 1. **Disabled tracing must cost (almost) nothing.** [`is_enabled`] is
//!    a single relaxed atomic load; when it returns `false`, [`span`]
//!    returns an inert guard without touching the thread-local, without
//!    reading the clock, and without allocating. The query hot path
//!    (`check` at millions of calls per compilation) keeps its current
//!    performance; `tests` pin the zero-allocation property.
//! 2. **Recording must not allocate per event.** Event payloads are
//!    `Copy` — names and categories are `&'static str`, arguments a
//!    single `(&'static str, u64)` pair — and land in a pre-grown
//!    `Vec` used as a ring: once full, the oldest events are
//!    overwritten and counted in [`dropped_events`].
//! 3. **No cross-thread coordination on the hot path.** Each thread
//!    records privately; a drain ([`drain_events`]) is explicit and
//!    per-thread, which is exactly the shape the work-stealing bench
//!    runner wants (record privately, merge by index).

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

/// Default per-thread ring capacity (events), enough for a full
/// reduction + profile run without drops.
const DEFAULT_CAPACITY: usize = 1 << 16;

static ENABLED: AtomicBool = AtomicBool::new(false);
static NEXT_TID: AtomicU32 = AtomicU32::new(0);

/// Is event recording currently enabled?
///
/// One relaxed atomic load — cheap enough for the innermost query loop.
#[inline(always)]
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Globally enables or disables event recording.
///
/// Off by default. Spans created while disabled stay inert even if
/// recording is enabled before they drop.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::SeqCst);
}

fn epoch() -> &'static Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    EPOCH.get_or_init(Instant::now)
}

/// Monotonic nanoseconds since the process-wide tracing epoch (the
/// first call to any timing function in this module).
pub fn now_ns() -> u64 {
    epoch().elapsed().as_nanos() as u64
}

/// What an [`Event`] records.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum EventKind {
    /// A duration: `start_ns..start_ns + dur_ns`.
    Span,
    /// A point in time; `dur_ns` is zero.
    Instant,
}

impl EventKind {
    /// Stable lowercase tag used by the exporters.
    pub fn tag(self) -> &'static str {
        match self {
            EventKind::Span => "span",
            EventKind::Instant => "instant",
        }
    }
}

/// One recorded trace event. `Copy` by construction: names are static,
/// the optional argument is a single key/value pair.
#[derive(Clone, Copy, Debug)]
pub struct Event {
    /// Category (the subsystem: `"reduction"`, `"query"`, `"sched"`, …).
    pub cat: &'static str,
    /// Event name (e.g. a reduction phase or `"attempt"`).
    pub name: &'static str,
    /// Span or instant.
    pub kind: EventKind,
    /// Start time, nanoseconds since the tracing epoch.
    pub start_ns: u64,
    /// Duration in nanoseconds (zero for instants).
    pub dur_ns: u64,
    /// Recording thread (small sequential id, not the OS tid).
    pub tid: u32,
    /// Optional single argument, e.g. `("ii", 7)`.
    pub arg: Option<(&'static str, u64)>,
}

struct Recorder {
    tid: u32,
    buf: Vec<Event>,
    /// Next slot to overwrite once the ring is full.
    next: usize,
    capacity: usize,
    dropped: u64,
}

impl Recorder {
    fn push(&mut self, e: Event) {
        if self.buf.len() < self.capacity {
            self.buf.push(e);
        } else if self.capacity > 0 {
            self.buf[self.next] = e;
            self.next = (self.next + 1) % self.capacity;
            self.dropped += 1;
        } else {
            self.dropped += 1;
        }
    }

    fn drain(&mut self) -> Vec<Event> {
        // buf[next..] holds the oldest events once the ring has wrapped.
        let mut out = self.buf.split_off(self.next);
        out.append(&mut self.buf);
        self.next = 0;
        out
    }
}

thread_local! {
    static RECORDER: RefCell<Recorder> = RefCell::new(Recorder {
        tid: NEXT_TID.fetch_add(1, Ordering::Relaxed),
        buf: Vec::new(),
        next: 0,
        capacity: DEFAULT_CAPACITY,
        dropped: 0,
    });
}

fn record(cat: &'static str, name: &'static str, kind: EventKind, start_ns: u64, dur_ns: u64, arg: Option<(&'static str, u64)>) {
    RECORDER.with(|r| {
        let mut r = r.borrow_mut();
        let tid = r.tid;
        r.push(Event {
            cat,
            name,
            kind,
            start_ns,
            dur_ns,
            tid,
            arg,
        });
    });
}

/// Drains and returns this thread's recorded events, oldest first.
///
/// Also resets the dropped-event count. Each thread drains its own
/// buffer; a multi-threaded harness collects per-worker drains and
/// concatenates them by worker index for determinism.
pub fn drain_events() -> Vec<Event> {
    RECORDER.with(|r| {
        let mut r = r.borrow_mut();
        r.dropped = 0;
        r.drain()
    })
}

/// Events overwritten on this thread since the last drain (ring full).
pub fn dropped_events() -> u64 {
    RECORDER.with(|r| r.borrow().dropped)
}

/// Resizes this thread's ring buffer (drops already-recorded events
/// beyond the new capacity only lazily — existing events are kept).
pub fn set_ring_capacity(capacity: usize) {
    RECORDER.with(|r| r.borrow_mut().capacity = capacity);
}

/// Records an instant event if tracing is enabled.
#[inline]
pub fn instant(cat: &'static str, name: &'static str) {
    if is_enabled() {
        record(cat, name, EventKind::Instant, now_ns(), 0, None);
    }
}

/// Records an instant event with one argument if tracing is enabled.
#[inline]
pub fn instant_with(cat: &'static str, name: &'static str, key: &'static str, value: u64) {
    if is_enabled() {
        record(cat, name, EventKind::Instant, now_ns(), 0, Some((key, value)));
    }
}

/// Everything a live span needs to record itself on drop; `Copy`, so an
/// inert guard is just `None`.
#[derive(Clone, Copy)]
struct Live {
    cat: &'static str,
    name: &'static str,
    start_ns: u64,
    arg: Option<(&'static str, u64)>,
}

/// RAII guard returned by [`span`]; records a [`EventKind::Span`] event
/// covering its lifetime when dropped. Inert (no clock read, no
/// recording) when tracing was disabled at creation.
#[must_use = "a span records on drop; binding it to _ discards it immediately"]
pub struct SpanGuard {
    live: Option<Live>,
}

impl SpanGuard {
    /// Attaches (or replaces) the span's single argument. No-op on an
    /// inert guard.
    pub fn set_arg(&mut self, key: &'static str, value: u64) {
        if let Some(l) = &mut self.live {
            l.arg = Some((key, value));
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(l) = self.live {
            let dur = now_ns().saturating_sub(l.start_ns);
            record(l.cat, l.name, EventKind::Span, l.start_ns, dur, l.arg);
        }
    }
}

/// Opens a span; the returned guard records the elapsed duration when
/// dropped. When tracing is disabled this is one atomic load and an
/// inert guard — no clock read, no allocation.
#[inline]
pub fn span(cat: &'static str, name: &'static str) -> SpanGuard {
    if is_enabled() {
        SpanGuard {
            live: Some(Live {
                cat,
                name,
                start_ns: now_ns(),
                arg: None,
            }),
        }
    } else {
        SpanGuard { live: None }
    }
}

/// Like [`span`], with one argument attached up front.
#[inline]
pub fn span_with(cat: &'static str, name: &'static str, key: &'static str, value: u64) -> SpanGuard {
    let mut g = span(cat, name);
    g.set_arg(key, value);
    g
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serializes the tests in this module: they all toggle the global
    /// flag and share the thread-local buffer.
    fn with_tracing<R>(f: impl FnOnce() -> R) -> R {
        static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
        let _g = LOCK.lock().unwrap();
        drain_events();
        set_enabled(true);
        let r = f();
        set_enabled(false);
        drain_events();
        r
    }

    #[test]
    fn spans_record_on_drop_in_order() {
        with_tracing(|| {
            {
                let _outer = span("t", "outer");
                let _inner = span_with("t", "inner", "k", 3);
            }
            instant("t", "mark");
            let ev = drain_events();
            // Inner drops before outer; the instant comes last.
            assert_eq!(
                ev.iter().map(|e| e.name).collect::<Vec<_>>(),
                vec!["inner", "outer", "mark"]
            );
            assert_eq!(ev[0].arg, Some(("k", 3)));
            assert_eq!(ev[0].kind, EventKind::Span);
            assert_eq!(ev[2].kind, EventKind::Instant);
            assert_eq!(ev[2].dur_ns, 0);
            // The outer span opened first and covers the inner one.
            assert!(ev[1].start_ns <= ev[0].start_ns);
            assert!(ev[1].dur_ns >= ev[0].dur_ns);
        });
    }

    #[test]
    fn disabled_spans_record_nothing_even_if_enabled_later() {
        with_tracing(|| {
            set_enabled(false);
            let g = span("t", "ghost");
            set_enabled(true);
            drop(g);
            assert!(drain_events().is_empty());
        });
    }

    #[test]
    fn ring_overwrites_oldest_and_counts_drops() {
        with_tracing(|| {
            set_ring_capacity(4);
            for _ in 0..6 {
                instant("t", "e");
            }
            assert_eq!(dropped_events(), 2);
            let ev = drain_events();
            assert_eq!(ev.len(), 4);
            assert_eq!(dropped_events(), 0);
            // Oldest-first: timestamps are non-decreasing.
            for w in ev.windows(2) {
                assert!(w[0].start_ns <= w[1].start_ns);
            }
            set_ring_capacity(super::DEFAULT_CAPACITY);
        });
    }

    #[test]
    fn set_arg_replaces_the_argument() {
        with_tracing(|| {
            let mut g = span_with("t", "s", "a", 1);
            g.set_arg("b", 2);
            drop(g);
            assert_eq!(drain_events()[0].arg, Some(("b", 2)));
        });
    }
}
