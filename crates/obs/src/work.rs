//! Work-unit instrumentation (paper §8: "one unit of work handles a
//! single resource usage or a single non-empty word").
//!
//! These types used to live in `rmd-query`; they moved here so that
//! every backend — discrete, bitvector, compiled, modulo, automata —
//! shares one counting path ([`WorkCounters::record`]) and one bridge
//! into the metric registry ([`WorkCounters::export_to`]), while
//! `rmd-query` re-exports them unchanged for existing callers.

use crate::metrics::MetricRegistry;
use core::fmt;

/// The four query-protocol functions (paper §7), plus the batched
/// window query layered on top of `check`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum QueryFn {
    /// `check` — contention test only.
    Check,
    /// `assign` — unconditional reservation.
    Assign,
    /// `assign&free` — reserve, unscheduling conflicting operations.
    AssignFree,
    /// `free` — release a scheduled operation's resources.
    Free,
    /// `check_window` — batched availability query over up to 64
    /// consecutive cycles. Units count distinct backend word loads;
    /// the per-cycle equivalent work is charged to `check` so Table-6
    /// columns stay comparable with the scalar path.
    CheckWindow,
}

impl QueryFn {
    /// All metered functions: the four protocol functions in protocol
    /// order, then the derived window query.
    pub const ALL: [QueryFn; 5] = [
        QueryFn::Check,
        QueryFn::Assign,
        QueryFn::AssignFree,
        QueryFn::Free,
        QueryFn::CheckWindow,
    ];

    /// Stable snake_case name used for metric keys and reports.
    pub fn name(self) -> &'static str {
        match self {
            QueryFn::Check => "check",
            QueryFn::Assign => "assign",
            QueryFn::AssignFree => "assign_free",
            QueryFn::Free => "free",
            QueryFn::CheckWindow => "check_window",
        }
    }

    /// The paper's rendering (Table 6 row labels).
    pub fn display_name(self) -> &'static str {
        match self {
            QueryFn::Check => "check",
            QueryFn::Assign => "assign",
            QueryFn::AssignFree => "assign&free",
            QueryFn::Free => "free",
            QueryFn::CheckWindow => "check_window",
        }
    }
}

/// Calls and work units of one query-module function.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct FnCounter {
    /// Number of calls.
    pub calls: u64,
    /// Total work units across all calls.
    pub units: u64,
}

impl FnCounter {
    /// Average work units per call (0.0 when never called).
    pub fn avg(&self) -> f64 {
        if self.calls == 0 {
            0.0
        } else {
            self.units as f64 / self.calls as f64
        }
    }
}

/// Work-unit counters for the four basic functions, plus the
/// optimistic→update transition overhead of `assign&free`.
///
/// Table 6 of the paper is the per-function average of these counters
/// over a full scheduling run, with the transition overhead folded into
/// `assign&free` ("the overhead incurred in the transition ... is also
/// taken into account").
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct WorkCounters {
    /// `check` — contention test only.
    pub check: FnCounter,
    /// `assign` — unconditional reservation.
    pub assign: FnCounter,
    /// `assign&free` — reserve, unscheduling conflicting operations.
    /// Units include transition overhead.
    pub assign_free: FnCounter,
    /// `free` — release a scheduled operation's resources.
    pub free: FnCounter,
    /// `check_window` — batched window queries. Calls count windows
    /// probed; units count distinct backend word loads. The equivalent
    /// per-cycle work is *also* charged to `check` (via
    /// [`charge_equivalent_checks`](Self::charge_equivalent_checks)),
    /// so this counter is a parallel view, not a fifth column of the
    /// paper's totals: [`total_calls`](Self::total_calls) and
    /// [`total_units`](Self::total_units) deliberately exclude it.
    pub check_window: FnCounter,
    /// Number of optimistic→update mode transitions (bitvector only).
    pub transitions: u64,
}

impl WorkCounters {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Resets everything to zero.
    pub fn reset(&mut self) {
        *self = Self::default();
    }

    /// The counter of one function.
    pub fn of(&self, f: QueryFn) -> &FnCounter {
        match f {
            QueryFn::Check => &self.check,
            QueryFn::Assign => &self.assign,
            QueryFn::AssignFree => &self.assign_free,
            QueryFn::Free => &self.free,
            QueryFn::CheckWindow => &self.check_window,
        }
    }

    fn of_mut(&mut self, f: QueryFn) -> &mut FnCounter {
        match f {
            QueryFn::Check => &mut self.check,
            QueryFn::Assign => &mut self.assign,
            QueryFn::AssignFree => &mut self.assign_free,
            QueryFn::Free => &mut self.free,
            QueryFn::CheckWindow => &mut self.check_window,
        }
    }

    /// Records one completed call of `f` that performed `units` work
    /// units — the single counting path shared by every query backend.
    #[inline]
    pub fn record(&mut self, f: QueryFn, units: u64) {
        let c = self.of_mut(f);
        c.calls += 1;
        c.units += units;
    }

    /// Charges extra work units to `f` without counting a call (used
    /// for the optimistic→update transition overhead, which the paper
    /// folds into `assign&free`).
    #[inline]
    pub fn charge_units(&mut self, f: QueryFn, units: u64) {
        self.of_mut(f).units += units;
    }

    /// Counts one optimistic→update mode transition.
    #[inline]
    pub fn record_transition(&mut self) {
        self.transitions += 1;
    }

    /// Charges the `check` counter with the scalar-equivalent cost of a
    /// window query: `calls` per-cycle probes performing `units` work
    /// units in total. A backend's window override calls this with
    /// exactly what the equivalent loop of `check` calls would have
    /// recorded, keeping Table-6 work units byte-identical between the
    /// scalar and window paths.
    #[inline]
    pub fn charge_equivalent_checks(&mut self, calls: u64, units: u64) {
        self.check.calls += calls;
        self.check.units += units;
    }

    /// Total calls over the four protocol functions. Window queries are
    /// excluded: their scalar-equivalent cost is already folded into
    /// `check` by [`charge_equivalent_checks`](Self::charge_equivalent_checks).
    pub fn total_calls(&self) -> u64 {
        self.check.calls + self.assign.calls + self.assign_free.calls + self.free.calls
    }

    /// Total work units over the four protocol functions (window
    /// queries excluded; see [`total_calls`](Self::total_calls)).
    pub fn total_units(&self) -> u64 {
        self.check.units + self.assign.units + self.assign_free.units + self.free.units
    }

    /// The paper's bottom-line metric: average work units per call,
    /// weighting each function by its actual call frequency.
    pub fn weighted_avg_units(&self) -> f64 {
        if self.total_calls() == 0 {
            0.0
        } else {
            self.total_units() as f64 / self.total_calls() as f64
        }
    }

    /// Merges another counter set into this one (for aggregating over a
    /// benchmark suite).
    pub fn merge(&mut self, other: &WorkCounters) {
        self.check.calls += other.check.calls;
        self.check.units += other.check.units;
        self.assign.calls += other.assign.calls;
        self.assign.units += other.assign.units;
        self.assign_free.calls += other.assign_free.calls;
        self.assign_free.units += other.assign_free.units;
        self.free.calls += other.free.calls;
        self.free.units += other.free.units;
        self.check_window.calls += other.check_window.calls;
        self.check_window.units += other.check_window.units;
        self.transitions += other.transitions;
    }

    /// Exports the counters into `reg` under `prefix`: for each
    /// function `f`, counters `{prefix}.{f}.calls` and
    /// `{prefix}.{f}.units`, plus `{prefix}.transitions`. The view is
    /// additive: exporting twice (or exporting two counter sets) merges
    /// exactly like [`merge`](Self::merge).
    pub fn export_to(&self, reg: &mut MetricRegistry, prefix: &str) {
        for f in QueryFn::ALL {
            let c = self.of(f);
            reg.inc(&format!("{prefix}.{}.calls", f.name()), c.calls);
            reg.inc(&format!("{prefix}.{}.units", f.name()), c.units);
        }
        reg.inc(&format!("{prefix}.transitions"), self.transitions);
    }
}

impl fmt::Display for WorkCounters {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "check {:.2}/{} assign {:.2}/{} assign&free {:.2}/{} free {:.2}/{} (weighted {:.2})",
            self.check.avg(),
            self.check.calls,
            self.assign.avg(),
            self.assign.calls,
            self.assign_free.avg(),
            self.assign_free.calls,
            self.free.avg(),
            self.free.calls,
            self.weighted_avg_units(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn averages_and_weighting() {
        let mut w = WorkCounters::new();
        w.check = FnCounter { calls: 4, units: 8 };
        w.free = FnCounter { calls: 1, units: 7 };
        assert!((w.check.avg() - 2.0).abs() < 1e-12);
        assert_eq!(w.total_calls(), 5);
        assert_eq!(w.total_units(), 15);
        assert!((w.weighted_avg_units() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_counters_average_zero() {
        let w = WorkCounters::new();
        assert_eq!(w.weighted_avg_units(), 0.0);
        assert_eq!(w.check.avg(), 0.0);
    }

    #[test]
    fn record_and_charge_are_the_field_increments() {
        let mut w = WorkCounters::new();
        w.record(QueryFn::Check, 3);
        w.record(QueryFn::Check, 0);
        w.record(QueryFn::AssignFree, 2);
        w.charge_units(QueryFn::AssignFree, 5);
        w.record_transition();
        assert_eq!(w.check, FnCounter { calls: 2, units: 3 });
        assert_eq!(w.assign_free, FnCounter { calls: 1, units: 7 });
        assert_eq!(w.transitions, 1);
        let via_accessor: u64 = QueryFn::ALL.iter().map(|&f| w.of(f).calls).sum();
        assert_eq!(via_accessor, w.total_calls());
        // Window-query calls are a parallel view: the equivalent scalar
        // work is folded into `check`, so the totals exclude them.
        w.record(QueryFn::CheckWindow, 9);
        assert_eq!(w.check_window, FnCounter { calls: 1, units: 9 });
        assert_eq!(w.total_calls(), 3);
        assert_eq!(w.total_units(), 10);
    }

    #[test]
    fn equivalent_checks_charge_the_check_counter() {
        let mut w = WorkCounters::new();
        w.charge_equivalent_checks(4, 6);
        w.record(QueryFn::CheckWindow, 2);
        assert_eq!(w.check, FnCounter { calls: 4, units: 6 });
        assert_eq!(w.check_window, FnCounter { calls: 1, units: 2 });
        // Byte-identity: the derived view produces the same Table-6
        // totals as four scalar `check` calls would.
        let mut scalar = WorkCounters::new();
        scalar.record(QueryFn::Check, 2);
        scalar.record(QueryFn::Check, 1);
        scalar.record(QueryFn::Check, 2);
        scalar.record(QueryFn::Check, 1);
        assert_eq!(w.total_calls(), scalar.total_calls());
        assert_eq!(w.total_units(), scalar.total_units());
        assert_eq!(w.check, scalar.check);
    }

    #[test]
    fn export_to_registry_is_additive() {
        let mut a = WorkCounters::new();
        a.record(QueryFn::Check, 4);
        a.record(QueryFn::Free, 1);
        a.record_transition();
        let mut b = WorkCounters::new();
        b.record(QueryFn::Check, 6);

        let mut reg = MetricRegistry::new();
        a.export_to(&mut reg, "query");
        b.export_to(&mut reg, "query");
        assert_eq!(reg.counter("query.check.calls"), 2);
        assert_eq!(reg.counter("query.check.units"), 10);
        assert_eq!(reg.counter("query.free.calls"), 1);
        assert_eq!(reg.counter("query.transitions"), 1);

        // Exporting the merged counters gives the identical registry.
        let mut merged = a;
        merged.merge(&b);
        let mut reg2 = MetricRegistry::new();
        merged.export_to(&mut reg2, "query");
        assert_eq!(reg, reg2);
    }

    /// Deterministically scrambled counters for the associativity test.
    fn sample(seed: u64) -> WorkCounters {
        let mut s = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s % 1_000_003
        };
        let mut w = WorkCounters::new();
        w.check = FnCounter {
            calls: next(),
            units: next(),
        };
        w.assign = FnCounter {
            calls: next(),
            units: next(),
        };
        w.assign_free = FnCounter {
            calls: next(),
            units: next(),
        };
        w.free = FnCounter {
            calls: next(),
            units: next(),
        };
        w.check_window = FnCounter {
            calls: next(),
            units: next(),
        };
        w.transitions = next();
        w
    }

    /// The parallel suite runner merges per-shard counters in whatever
    /// grouping the shard boundaries induce; totals must not depend on
    /// it. Merge is plain `u64` addition, so this pins associativity and
    /// commutativity rather than fixing drift — any future non-linear
    /// field (say, a max or an average cached as a float) would fail
    /// here.
    #[test]
    fn merge_is_associative_and_commutative() {
        let parts: Vec<WorkCounters> = (0..7).map(sample).collect();

        // Left fold: ((a + b) + c) + ...
        let mut left = WorkCounters::new();
        for p in &parts {
            left.merge(p);
        }

        // Right-nested grouping: a + (b + (c + ...)).
        let mut right = WorkCounters::new();
        for p in parts.iter().rev() {
            let mut acc = *p;
            acc.merge(&right);
            right = acc;
        }
        assert_eq!(left, right, "grouping changed merge totals");

        // Arbitrary permutation (reversed and interleaved shards).
        let order = [3usize, 0, 6, 2, 5, 1, 4];
        let mut permuted = WorkCounters::new();
        for &i in &order {
            permuted.merge(&parts[i]);
        }
        assert_eq!(left, permuted, "shard order changed merge totals");

        // Pairwise tree reduction, as a work-stealing runner might do.
        let mut level: Vec<WorkCounters> = parts.clone();
        while level.len() > 1 {
            let mut next_level = Vec::new();
            for pair in level.chunks(2) {
                let mut acc = pair[0];
                if let Some(b) = pair.get(1) {
                    acc.merge(b);
                }
                next_level.push(acc);
            }
            level = next_level;
        }
        assert_eq!(left, level[0], "tree reduction changed merge totals");
    }

    #[test]
    fn merge_accumulates() {
        let mut a = WorkCounters::new();
        a.check = FnCounter { calls: 1, units: 2 };
        a.transitions = 1;
        let mut b = WorkCounters::new();
        b.check = FnCounter { calls: 3, units: 4 };
        b.assign_free = FnCounter { calls: 5, units: 6 };
        a.merge(&b);
        assert_eq!(a.check, FnCounter { calls: 4, units: 6 });
        assert_eq!(a.assign_free, FnCounter { calls: 5, units: 6 });
        assert_eq!(a.transitions, 1);
    }
}
