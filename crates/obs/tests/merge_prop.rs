//! Property tests for [`MetricRegistry::merge`]: the parallel suite
//! runner folds per-shard registries in whatever grouping and order the
//! shard boundaries induce, so merge must be associative and
//! commutative with the empty registry as identity — otherwise merged
//! metrics would depend on thread count.

use proptest::prelude::*;
use rmd_obs::MetricRegistry;

/// One randomly generated registry operation: `(kind, name, value)`
/// where kind 0 is a counter inc, 1 a gauge set, 2 a histogram observe.
/// The shim proptest has no `prop_map`, so ops stay raw tuples and
/// [`build`] interprets them.
type Op = (usize, &'static str, u64);

fn op_strategy() -> impl Strategy<Value = Op> {
    (
        0usize..3,
        prop::sample::select(vec!["alpha", "beta", "gamma", "delta"]),
        0u64..1_000_000,
    )
}

fn is_gauge(op: &Op) -> bool {
    op.0 == 1
}

fn build(ops: &[Op]) -> MetricRegistry {
    let mut reg = MetricRegistry::new();
    for &(kind, name, v) in ops {
        match kind {
            0 => reg.inc(name, v),
            1 => reg.set_gauge(name, v),
            _ => reg.observe(name, v),
        }
    }
    reg
}

fn merged(a: &MetricRegistry, b: &MetricRegistry) -> MetricRegistry {
    let mut out = a.clone();
    out.merge(b);
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn merge_is_associative(
        a in prop::collection::vec(op_strategy(), 0..40),
        b in prop::collection::vec(op_strategy(), 0..40),
        c in prop::collection::vec(op_strategy(), 0..40),
    ) {
        let (ra, rb, rc) = (build(&a), build(&b), build(&c));
        let left = merged(&merged(&ra, &rb), &rc);
        let right = merged(&ra, &merged(&rb, &rc));
        prop_assert_eq!(left, right);
    }

    #[test]
    fn counter_and_histogram_merge_is_commutative(
        a in prop::collection::vec(op_strategy(), 0..40),
        b in prop::collection::vec(op_strategy(), 0..40),
    ) {
        // Gauges merge by max, which is commutative too — so the whole
        // registry commutes regardless of which shard finished first.
        let (ra, rb) = (build(&a), build(&b));
        prop_assert_eq!(merged(&ra, &rb), merged(&rb, &ra));
    }

    #[test]
    fn empty_registry_is_the_merge_identity(
        a in prop::collection::vec(op_strategy(), 0..60),
    ) {
        let ra = build(&a);
        let empty = MetricRegistry::new();
        prop_assert_eq!(merged(&ra, &empty), ra.clone());
        prop_assert_eq!(merged(&empty, &ra), ra);
    }

    #[test]
    fn merge_equals_observing_the_concatenation(
        a in prop::collection::vec(op_strategy(), 0..40),
        b in prop::collection::vec(op_strategy(), 0..40),
    ) {
        // Gauges are excluded from this stronger statement: set_gauge is
        // last-write-wins locally but max-wins across shards, so only
        // counters and histograms are order-insensitive under
        // concatenation. Filter gauge ops out before comparing.
        let no_gauge = |ops: &[Op]| -> Vec<Op> {
            ops.iter().filter(|o| !is_gauge(o)).copied().collect()
        };
        let (ca, cb) = (no_gauge(&a), no_gauge(&b));
        let mut concat = ca.clone();
        concat.extend(cb.iter().cloned());
        prop_assert_eq!(merged(&build(&ca), &build(&cb)), build(&concat));
    }
}
