//! `check-with-alt`: finding a contention-free alternative operation
//! (paper §7).

use crate::traits::ContentionQuery;
use rmd_machine::alternatives::AltGroups;
use rmd_machine::OpId;

/// Determines whether `op` — or any of its alternative operations — can
/// issue in `cycle` without contention, returning the first
/// contention-free alternative.
///
/// Alternatives are tried in group order by repeated [`check`]
/// (the paper's stated implementation), starting with `op` itself so the
/// scheduler's preferred alternative wins ties.
///
/// [`check`]: ContentionQuery::check
///
/// # Example
///
/// ```
/// use rmd_machine::alternatives::AltDescription;
/// use rmd_machine::ReservationTable;
/// use rmd_query::{check_with_alt, ContentionQuery, DiscreteModule, OpInstance};
///
/// let mut d = AltDescription::new("dual-port");
/// let p0 = d.resource("port0");
/// let p1 = d.resource("port1");
/// d.operation("load")
///     .alternative(ReservationTable::from_usages([(p0, 0)]))
///     .alternative(ReservationTable::from_usages([(p1, 0)]))
///     .finish();
/// let (m, groups) = d.expand().unwrap();
/// let (l0, l1) = (m.op_by_name("load#0").unwrap(), m.op_by_name("load#1").unwrap());
///
/// let mut q = DiscreteModule::new(&m);
/// q.assign(OpInstance(0), l0, 0);
/// // Port 0 is taken in cycle 0; the query falls through to port 1.
/// assert_eq!(check_with_alt(&mut q, &groups, l0, 0), Some(l1));
/// ```
pub fn check_with_alt<Q: ContentionQuery + ?Sized>(
    query: &mut Q,
    groups: &AltGroups,
    op: OpId,
    cycle: u32,
) -> Option<OpId> {
    if query.check(op, cycle) {
        return Some(op);
    }
    groups
        .alternatives_of(op)
        .iter()
        .copied()
        .find(|&alt| alt != op && query.check(alt, cycle))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::discrete::DiscreteModule;
    use crate::registry::OpInstance;
    use rmd_machine::alternatives::AltDescription;
    use rmd_machine::ReservationTable;

    fn dual_port() -> (rmd_machine::MachineDescription, AltGroups, OpId, OpId) {
        let mut d = AltDescription::new("m");
        let p0 = d.resource("p0");
        let p1 = d.resource("p1");
        d.operation("ld")
            .alternative(ReservationTable::from_usages([(p0, 0)]))
            .alternative(ReservationTable::from_usages([(p1, 0)]))
            .finish();
        let (m, g) = d.expand().unwrap();
        let l0 = m.op_by_name("ld#0").unwrap();
        let l1 = m.op_by_name("ld#1").unwrap();
        (m, g, l0, l1)
    }

    #[test]
    fn prefers_the_requested_op() {
        let (m, g, l0, _) = dual_port();
        let mut q = DiscreteModule::new(&m);
        assert_eq!(check_with_alt(&mut q, &g, l0, 0), Some(l0));
    }

    #[test]
    fn falls_through_to_free_alternative() {
        let (m, g, l0, l1) = dual_port();
        let mut q = DiscreteModule::new(&m);
        q.assign(OpInstance(0), l0, 0);
        assert_eq!(check_with_alt(&mut q, &g, l0, 0), Some(l1));
        // Asking via the other alternative also works.
        assert_eq!(check_with_alt(&mut q, &g, l1, 0), Some(l1));
    }

    #[test]
    fn none_when_all_alternatives_blocked() {
        let (m, g, l0, l1) = dual_port();
        let mut q = DiscreteModule::new(&m);
        q.assign(OpInstance(0), l0, 0);
        q.assign(OpInstance(1), l1, 0);
        assert_eq!(check_with_alt(&mut q, &g, l0, 0), None);
        // A later cycle is free.
        assert_eq!(check_with_alt(&mut q, &g, l0, 1), Some(l0));
    }

    #[test]
    fn issues_one_check_per_alternative_tried() {
        let (m, g, l0, _) = dual_port();
        let mut q = DiscreteModule::new(&m);
        q.assign(OpInstance(0), l0, 0);
        let before = q.counters().check.calls;
        check_with_alt(&mut q, &g, l0, 0);
        assert_eq!(q.counters().check.calls - before, 2);
    }
}
