//! `check-with-alt`: finding a contention-free alternative operation
//! (paper §7).

use crate::traits::ContentionQuery;
use rmd_machine::alternatives::AltGroups;
use rmd_machine::OpId;

/// Determines whether `op` — or any of its alternative operations — can
/// issue in `cycle` without contention, returning the first
/// contention-free alternative.
///
/// Alternatives are tried in group order by repeated [`check`]
/// (the paper's stated implementation), starting with `op` itself so the
/// scheduler's preferred alternative wins ties.
///
/// [`check`]: ContentionQuery::check
///
/// # Example
///
/// ```
/// use rmd_machine::alternatives::AltDescription;
/// use rmd_machine::ReservationTable;
/// use rmd_query::{check_with_alt, ContentionQuery, DiscreteModule, OpInstance};
///
/// let mut d = AltDescription::new("dual-port");
/// let p0 = d.resource("port0");
/// let p1 = d.resource("port1");
/// d.operation("load")
///     .alternative(ReservationTable::from_usages([(p0, 0)]))
///     .alternative(ReservationTable::from_usages([(p1, 0)]))
///     .finish();
/// let (m, groups) = d.expand().unwrap();
/// let (l0, l1) = (m.op_by_name("load#0").unwrap(), m.op_by_name("load#1").unwrap());
///
/// let mut q = DiscreteModule::new(&m);
/// q.assign(OpInstance(0), l0, 0);
/// // Port 0 is taken in cycle 0; the query falls through to port 1.
/// assert_eq!(check_with_alt(&mut q, &groups, l0, 0), Some(l1));
/// ```
pub fn check_with_alt<Q: ContentionQuery + ?Sized>(
    query: &mut Q,
    groups: &AltGroups,
    op: OpId,
    cycle: u32,
) -> Option<OpId> {
    if query.check(op, cycle) {
        return Some(op);
    }
    groups
        .alternatives_of(op)
        .iter()
        .copied()
        .find(|&alt| alt != op && query.check(alt, cycle))
}

/// Slot search over `[start, start + len)` with alternatives: the first
/// cycle in which `op` or one of its alternatives can issue, together
/// with the chosen alternative — the windowed counterpart of scanning
/// [`check_with_alt`] cycle by cycle, with identical results and
/// identical `check` accounting.
///
/// An operation without real alternatives (the common case — most ops
/// either have no group or are their group's only member) delegates to
/// the backend's batched [`first_free_in`]: per cycle, the scalar loop
/// would have issued exactly one `check` of `op`, which is precisely
/// what `first_free_in` charges. With real alternatives the probe order
/// interleaves base and alternatives *within* each cycle before moving
/// on, so batching per op would reorder (and over-count) probes; that
/// path keeps the per-cycle loop.
///
/// [`first_free_in`]: ContentionQuery::first_free_in
pub fn first_free_with_alt<Q: ContentionQuery + ?Sized>(
    query: &mut Q,
    groups: &AltGroups,
    op: OpId,
    start: u32,
    len: u32,
) -> Option<(u32, OpId)> {
    let has_real_alts = groups.alternatives_of(op).iter().any(|&alt| alt != op);
    if !has_real_alts {
        return query.first_free_in(op, start, len).map(|t| (t, op));
    }
    let end = u64::from(start) + u64::from(len);
    let mut cursor = u64::from(start);
    while cursor < end && cursor <= u64::from(u32::MAX) {
        let t = cursor as u32;
        if let Some(chosen) = check_with_alt(query, groups, op, t) {
            return Some((t, chosen));
        }
        cursor += 1;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::discrete::DiscreteModule;
    use crate::registry::OpInstance;
    use rmd_machine::alternatives::AltDescription;
    use rmd_machine::ReservationTable;

    fn dual_port() -> (rmd_machine::MachineDescription, AltGroups, OpId, OpId) {
        let mut d = AltDescription::new("m");
        let p0 = d.resource("p0");
        let p1 = d.resource("p1");
        d.operation("ld")
            .alternative(ReservationTable::from_usages([(p0, 0)]))
            .alternative(ReservationTable::from_usages([(p1, 0)]))
            .finish();
        let (m, g) = d.expand().unwrap();
        let l0 = m.op_by_name("ld#0").unwrap();
        let l1 = m.op_by_name("ld#1").unwrap();
        (m, g, l0, l1)
    }

    #[test]
    fn prefers_the_requested_op() {
        let (m, g, l0, _) = dual_port();
        let mut q = DiscreteModule::new(&m);
        assert_eq!(check_with_alt(&mut q, &g, l0, 0), Some(l0));
    }

    #[test]
    fn falls_through_to_free_alternative() {
        let (m, g, l0, l1) = dual_port();
        let mut q = DiscreteModule::new(&m);
        q.assign(OpInstance(0), l0, 0);
        assert_eq!(check_with_alt(&mut q, &g, l0, 0), Some(l1));
        // Asking via the other alternative also works.
        assert_eq!(check_with_alt(&mut q, &g, l1, 0), Some(l1));
    }

    #[test]
    fn none_when_all_alternatives_blocked() {
        let (m, g, l0, l1) = dual_port();
        let mut q = DiscreteModule::new(&m);
        q.assign(OpInstance(0), l0, 0);
        q.assign(OpInstance(1), l1, 0);
        assert_eq!(check_with_alt(&mut q, &g, l0, 0), None);
        // A later cycle is free.
        assert_eq!(check_with_alt(&mut q, &g, l0, 1), Some(l0));
    }

    #[test]
    fn issues_one_check_per_alternative_tried() {
        let (m, g, l0, _) = dual_port();
        let mut q = DiscreteModule::new(&m);
        q.assign(OpInstance(0), l0, 0);
        let before = q.counters().check.calls;
        check_with_alt(&mut q, &g, l0, 0);
        assert_eq!(q.counters().check.calls - before, 2);
    }

    #[test]
    fn windowed_search_matches_the_scalar_loop_with_alternatives() {
        let (m, g, l0, l1) = dual_port();
        let mut scalar = DiscreteModule::new(&m);
        let mut windowed = DiscreteModule::new(&m);
        for q in [&mut scalar, &mut windowed] {
            q.assign(OpInstance(0), l0, 0);
            q.assign(OpInstance(1), l1, 0);
            q.assign(OpInstance(2), l0, 1);
        }
        // Scalar reference: cycle-by-cycle check_with_alt.
        let mut expect = None;
        for t in 0..8u32 {
            if let Some(chosen) = check_with_alt(&mut scalar, &g, l0, t) {
                expect = Some((t, chosen));
                break;
            }
        }
        let got = first_free_with_alt(&mut windowed, &g, l0, 0, 8);
        assert_eq!(got, expect);
        assert_eq!(got, Some((1, l1))); // port 1 is free from cycle 1 on
        // Identical `check` accounting: both paths probed the same ops
        // in the same cycles.
        assert_eq!(scalar.counters().check, windowed.counters().check);
    }

    #[test]
    fn ops_without_alternatives_use_the_batched_path() {
        // Identity grouping (every op its own group): the search
        // delegates to the backend's first_free_in, which meters
        // check_window.
        let m = rmd_machine::models::example_machine();
        let g = AltGroups::identity(&m);
        let b = m.op_by_name("B").unwrap();
        let mut q = DiscreteModule::new(&m);
        q.assign(OpInstance(0), b, 0);
        assert_eq!(first_free_with_alt(&mut q, &g, b, 1, 10), Some((4, b)));
        assert!(q.counters().check_window.calls > 0);
        // Nothing free in a too-short window.
        assert_eq!(first_free_with_alt(&mut q, &g, b, 1, 3), None);
    }
}
