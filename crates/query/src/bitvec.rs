//! The bitvector-representation query module.

use crate::compiled::{CompiledMasks, CompiledUsages};
use crate::counters::{QueryFn, WorkCounters};
use crate::registry::{OpInstance, Registry};
#[cfg(debug_assertions)]
use crate::trace::{ProtocolChecker, QueryEvent};
use crate::traits::ContentionQuery;
use crate::window::{self, LoadCache, WindowScan};
use rmd_machine::{MachineDescription, OpId};

/// How cycle-bitvectors are packed into memory words.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct WordLayout {
    /// Logical word size in bits (the paper evaluates 32 and 64).
    pub word_bits: u32,
    /// Cycle-bitvectors packed per word.
    pub k: u32,
}

impl WordLayout {
    /// The widest layout for a machine with `num_resources` resources:
    /// `k = word_bits / num_resources` cycles per word (at least 1 — a
    /// machine wider than the word degenerates to one cycle per word,
    /// still stored in a single `u64` here).
    pub fn widest(word_bits: u32, num_resources: usize) -> Self {
        let k = (word_bits / (num_resources as u32).max(1)).max(1);
        WordLayout { word_bits, k }
    }

    /// A layout with exactly `k` cycles per word.
    pub fn with_k(word_bits: u32, k: u32) -> Self {
        WordLayout { word_bits, k }
    }
}

/// Contention query module over a *bitvector* reserved table: the flag
/// bits of the discrete representation packed `k` cycle-bitvectors per
/// word (paper §5 "bitvector-representation", §7).
///
/// * `check` — AND each nonempty reservation word with the reserved
///   table and test for zero; aborts at the first conflict.
/// * `assign` — OR the words in.
/// * `free` — AND the complements.
/// * `assign_free` — *optimistic mode*: pure word operations while no
///   conflict arises; the first conflict triggers a transition that
///   scans the scheduled-operation list to rebuild per-entry owner
///   fields (cost charged to the call), after which the module stays in
///   *update mode* and `assign_free` iterates over usages like the
///   discrete module.
///
/// Work units: one per nonempty word handled (or per usage in update
/// mode), matching the paper's accounting.
#[derive(Clone, Debug)]
pub struct BitvecModule {
    masks: CompiledMasks,
    usages: CompiledUsages,
    layout: WordLayout,
    words: Vec<u64>,
    /// Owner fields, maintained from the first transition on.
    owner: Option<Vec<Option<OpInstance>>>,
    horizon_cycles: u32,
    registry: Registry,
    counters: WorkCounters,
    /// Debug builds validate the query protocol on every call.
    #[cfg(debug_assertions)]
    guard: ProtocolChecker,
}

impl BitvecModule {
    /// Creates an empty partial schedule over `machine` with the given
    /// word layout.
    ///
    /// # Panics
    ///
    /// Panics if `layout.k * machine.num_resources()` exceeds 64 bits.
    pub fn new(machine: &MachineDescription, layout: WordLayout) -> Self {
        BitvecModule {
            masks: CompiledMasks::new(machine, layout.k),
            usages: CompiledUsages::new(machine),
            layout,
            words: Vec::new(),
            owner: None,
            horizon_cycles: 0,
            registry: Registry::new(),
            counters: WorkCounters::new(),
            #[cfg(debug_assertions)]
            guard: ProtocolChecker::new(machine),
        }
    }

    /// Debug-only protocol enforcement; see
    /// [`DiscreteModule`](crate::DiscreteModule) for the same hook.
    #[cfg(debug_assertions)]
    #[inline]
    fn guard(&mut self, event: QueryEvent) {
        if let Err(v) = self.guard.observe(&event) {
            panic!("query-protocol violation in BitvecModule: {v}");
        }
    }

    /// Whether the module has transitioned to update mode.
    pub fn in_update_mode(&self) -> bool {
        self.owner.is_some()
    }

    /// Fault-injection hook: XORs `mask` into word `index` of the packed
    /// reserved table, growing the table if needed.
    ///
    /// This models in-memory corruption of the bitvector state and
    /// exists solely for the `rmd-fault` mutation harness, whose
    /// differential oracle must prove that a flipped word changes query
    /// answers relative to the discrete representation. Schedulers must
    /// never call it: a corrupted table violates the owner/registry
    /// invariants that `assign` and `free` debug-assert.
    pub fn corrupt_word(&mut self, index: usize, mask: u64) {
        if index >= self.words.len() {
            self.words.resize(index + 1, 0);
        }
        self.words[index] ^= mask;
    }

    /// The word layout in use.
    pub fn layout(&self) -> WordLayout {
        self.layout
    }

    /// The instance holding resource `r` at `cycle`, if the module is in
    /// update mode and the slot is reserved. Always `None` in optimistic
    /// mode, where no owner fields exist ([`Self::in_update_mode`]
    /// distinguishes the two cases).
    pub fn owner_of(&self, r: u32, cycle: u32) -> Option<OpInstance> {
        let owner = self.owner.as_ref()?;
        owner.get(self.slot(r, cycle)).copied().flatten()
    }

    fn ensure_horizon(&mut self, cycles: u32) {
        if cycles > self.horizon_cycles {
            let words = (cycles as usize).div_ceil(self.layout.k as usize) + 1;
            if words > self.words.len() {
                self.words.resize(words, 0);
            }
            if let Some(owner) = &mut self.owner {
                owner.resize(cycles as usize * self.usages.num_resources, None);
            }
            self.horizon_cycles = cycles;
        }
    }

    #[inline]
    fn slot(&self, r: u32, cycle: u32) -> usize {
        cycle as usize * self.usages.num_resources + r as usize
    }

    /// Rebuild owner fields from the scheduled-operation list; charged
    /// one unit per usage scanned (paper: "the entire list of scheduled
    /// operations is scanned to reconstruct the new field entries").
    fn transition_to_update(&mut self) {
        let nr = self.usages.num_resources;
        let mut owner = vec![None; self.horizon_cycles as usize * nr];
        let mut scanned = 0u64;
        for (inst, op, cycle) in self.registry.iter() {
            for &(r, c) in self.usages.of(op) {
                scanned += 1;
                let s = (cycle + c) as usize * nr + r as usize;
                owner[s] = Some(inst);
            }
        }
        self.counters.charge_units(QueryFn::AssignFree, scanned);
        self.counters.record_transition();
        self.owner = Some(owner);
    }

    fn set_owner(&mut self, r: u32, cycle: u32, v: Option<OpInstance>) {
        let s = self.slot(r, cycle);
        if let Some(owner) = &mut self.owner {
            owner[s] = v;
        }
    }

    /// Word-parallel window scan behind the `check_window` /
    /// `first_free_in` overrides: probes cycles `start + i` for
    /// `i < len` against the same per-alignment mask lists as `check`
    /// (same early exits, so the equivalent-`check` accounting is
    /// exact), but reloads a table word only when the previous cycle
    /// read a different one — with `k` cycles packed per word, that is
    /// the word-level batching the paper's layout was built for.
    fn window_scan(&mut self, op: OpId, start: u32, len: u32, stop_at_free: bool) -> WindowScan {
        let len = len.min(64);
        let k = self.layout.k;
        let mut cache = LoadCache::new();
        let mut out = WindowScan::default();
        for i in 0..len {
            let Some(cycle) = start.checked_add(i) else {
                break;
            };
            let (a, base) = (cycle % k, (cycle / k) as usize);
            out.probed += 1;
            let mut clear = true;
            for &(off, m) in self.masks.of(op, a) {
                out.eq_units += 1;
                let idx = base + off as usize;
                let w = cache.read(idx, || self.words.get(idx).copied().unwrap_or(0));
                if w & m != 0 {
                    clear = false;
                    break;
                }
            }
            if clear {
                out.mask |= 1u64 << i;
                if out.first_free.is_none() {
                    out.first_free = Some(cycle);
                }
                if stop_at_free {
                    break;
                }
            }
        }
        out.loads = cache.loads;
        out
    }

    /// OR/ANDN an op's words in or out, returning one work unit per
    /// word touched (the caller records them on its own function).
    fn word_apply(&mut self, op: OpId, cycle: u32, set: bool) -> u64 {
        let k = self.layout.k;
        let (a, base) = (cycle % k, (cycle / k) as usize);
        let mut units = 0;
        for i in 0..self.masks.of(op, a).len() {
            let (off, m) = self.masks.of(op, a)[i];
            units += 1;
            let w = &mut self.words[base + off as usize];
            if set {
                debug_assert_eq!(*w & m, 0, "assign over a reservation");
                *w |= m;
            } else {
                debug_assert_eq!(*w & m, m, "free of unreserved bits");
                *w &= !m;
            }
        }
        units
    }
}

impl ContentionQuery for BitvecModule {
    fn check(&mut self, op: OpId, cycle: u32) -> bool {
        let k = self.layout.k;
        let (a, base) = (cycle % k, (cycle / k) as usize);
        let mut units = 0;
        let mut clear = true;
        for &(off, m) in self.masks.of(op, a) {
            units += 1;
            let w = self.words.get(base + off as usize).copied().unwrap_or(0);
            if w & m != 0 {
                clear = false;
                break;
            }
        }
        self.counters.record(QueryFn::Check, units);
        clear
    }

    fn assign(&mut self, inst: OpInstance, op: OpId, cycle: u32) {
        #[cfg(debug_assertions)]
        self.guard(QueryEvent::Assign { inst, op, cycle });
        self.ensure_horizon(cycle + self.usages.length[op.index()]);
        let units = self.word_apply(op, cycle, true);
        self.counters.record(QueryFn::Assign, units);
        if self.owner.is_some() {
            for i in 0..self.usages.of(op).len() {
                let (r, c) = self.usages.of(op)[i];
                self.set_owner(r, cycle + c, Some(inst));
            }
        }
        self.registry.insert(inst, op, cycle);
    }

    fn assign_free(&mut self, inst: OpInstance, op: OpId, cycle: u32) -> Vec<OpInstance> {
        #[cfg(debug_assertions)]
        self.guard(QueryEvent::AssignFree { inst, op, cycle });
        self.ensure_horizon(cycle + self.usages.length[op.index()]);
        let mut units = 0;

        if self.owner.is_none() {
            // Optimistic mode: try pure word operations.
            let k = self.layout.k;
            let (a, base) = (cycle % k, (cycle / k) as usize);
            let mut conflict = false;
            for i in 0..self.masks.of(op, a).len() {
                let (off, m) = self.masks.of(op, a)[i];
                units += 1;
                if self.words[base + off as usize] & m != 0 {
                    conflict = true;
                    break;
                }
            }
            if !conflict {
                // One more pass ORs the words in; the paper's unit is
                // "handling a word", already counted above.
                for i in 0..self.masks.of(op, a).len() {
                    let (off, m) = self.masks.of(op, a)[i];
                    self.words[base + off as usize] |= m;
                }
                self.counters.record(QueryFn::AssignFree, units);
                self.registry.insert(inst, op, cycle);
                return Vec::new();
            }
            // Conflict: rebuild owner fields and stay in update mode
            // (the scan is charged to assign&free inside the call).
            self.transition_to_update();
        }

        // Update mode: per-usage processing with owner maintenance.
        let mut evicted = Vec::new();
        for i in 0..self.usages.of(op).len() {
            let (r, c) = self.usages.of(op)[i];
            units += 1;
            let gc = cycle + c;
            let holder = self.owner.as_ref().expect("update mode")[self.slot(r, gc)];
            if let Some(holder) = holder {
                if holder != inst {
                    let (hop, hcycle) = self
                        .registry
                        .remove(holder)
                        .expect("owner entries track registered instances");
                    for j in 0..self.usages.of(hop).len() {
                        let (hr, hc) = self.usages.of(hop)[j];
                        units += 1;
                        let hgc = hcycle + hc;
                        self.set_owner(hr, hgc, None);
                        // Clear the flag bit.
                        let k = self.layout.k;
                        let bit = (hgc % k) * self.usages.num_resources as u32 + hr;
                        self.words[(hgc / k) as usize] &= !(1u64 << bit);
                    }
                    evicted.push(holder);
                }
            }
            self.set_owner(r, gc, Some(inst));
            let k = self.layout.k;
            let bit = (gc % k) * self.usages.num_resources as u32 + r;
            self.words[(gc / k) as usize] |= 1u64 << bit;
        }
        self.counters.record(QueryFn::AssignFree, units);
        self.registry.insert(inst, op, cycle);
        evicted
    }

    fn free(&mut self, inst: OpInstance, op: OpId, cycle: u32) {
        #[cfg(debug_assertions)]
        self.guard(QueryEvent::Free { inst, op, cycle });
        let removed = self.registry.remove(inst);
        debug_assert_eq!(removed, Some((op, cycle)), "free of unscheduled instance");
        let units = self.word_apply(op, cycle, false);
        self.counters.record(QueryFn::Free, units);
        if self.owner.is_some() {
            for i in 0..self.usages.of(op).len() {
                let (r, c) = self.usages.of(op)[i];
                self.set_owner(r, cycle + c, None);
            }
        }
    }

    fn check_window(&mut self, op: OpId, start: u32, len: u32) -> u64 {
        let s = self.window_scan(op, start, len, false);
        s.record(&mut self.counters);
        s.mask
    }

    fn first_free_in(&mut self, op: OpId, start: u32, len: u32) -> Option<u32> {
        window::first_free_chunked(start, len, |s, l| {
            let scan = self.window_scan(op, s, l, true);
            scan.record(&mut self.counters);
            scan.first_free
        })
    }

    fn counters(&self) -> &WorkCounters {
        &self.counters
    }

    fn counters_mut(&mut self) -> &mut WorkCounters {
        &mut self.counters
    }

    fn reset(&mut self) {
        self.words.fill(0);
        self.owner = None;
        self.registry.clear();
        self.counters.reset();
        #[cfg(debug_assertions)]
        self.guard.reset();
    }

    fn num_scheduled(&self) -> usize {
        self.registry.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::discrete::DiscreteModule;
    use rmd_machine::models::example_machine;

    fn module(k: u32) -> (rmd_machine::MachineDescription, BitvecModule, OpId, OpId) {
        let m = example_machine();
        let a = m.op_by_name("A").unwrap();
        let b = m.op_by_name("B").unwrap();
        let q = BitvecModule::new(&m, WordLayout::with_k(64, k));
        (m, q, a, b)
    }

    #[test]
    fn widest_layout_divides_word() {
        assert_eq!(WordLayout::widest(64, 15).k, 4);
        assert_eq!(WordLayout::widest(32, 15).k, 2);
        assert_eq!(WordLayout::widest(32, 7).k, 4);
        assert_eq!(WordLayout::widest(32, 100).k, 1);
    }

    #[test]
    fn check_matches_discrete_for_all_k() {
        let m = example_machine();
        let b = m.op_by_name("B").unwrap();
        let a = m.op_by_name("A").unwrap();
        for k in 1..=4 {
            let mut bv = BitvecModule::new(&m, WordLayout::with_k(64, k));
            let mut ds = DiscreteModule::new(&m);
            for (i, (op, cyc)) in [(b, 0u32), (a, 2), (b, 4)].iter().enumerate() {
                bv.assign(OpInstance(i as u32), *op, *cyc);
                ds.assign(OpInstance(i as u32), *op, *cyc);
            }
            for cyc in 0..16 {
                for op in [a, b] {
                    assert_eq!(bv.check(op, cyc), ds.check(op, cyc), "k={k} {op} @{cyc}");
                }
            }
        }
    }

    #[test]
    fn assign_free_optimistic_stays_wordwise() {
        let (_, mut q, a, b) = module(4);
        assert!(q.assign_free(OpInstance(0), b, 0).is_empty());
        assert!(q.assign_free(OpInstance(1), a, 2).is_empty());
        assert!(!q.in_update_mode());
        assert_eq!(q.counters().transitions, 0);
    }

    #[test]
    fn assign_free_conflict_transitions_once_then_evicts() {
        let (_, mut q, _, b) = module(4);
        q.assign_free(OpInstance(0), b, 0);
        let evicted = q.assign_free(OpInstance(1), b, 1);
        assert_eq!(evicted, vec![OpInstance(0)]);
        assert!(q.in_update_mode());
        assert_eq!(q.counters().transitions, 1);
        // Further conflicts stay in update mode without new transitions.
        let evicted = q.assign_free(OpInstance(2), b, 2);
        assert_eq!(evicted, vec![OpInstance(1)]);
        assert_eq!(q.counters().transitions, 1);
        assert_eq!(q.num_scheduled(), 1);
    }

    #[test]
    fn free_clears_words_in_both_modes() {
        let (_, mut q, _, b) = module(2);
        // Optimistic.
        q.assign_free(OpInstance(0), b, 0);
        q.free(OpInstance(0), b, 0);
        assert!(q.check(b, 0));
        // Trigger update mode, then free again.
        q.assign_free(OpInstance(1), b, 0);
        q.assign_free(OpInstance(2), b, 1);
        q.free(OpInstance(2), b, 1);
        assert!(q.check(b, 1));
        assert_eq!(q.num_scheduled(), 0);
    }

    #[test]
    fn word_units_are_fewer_than_usage_units_for_packed_words() {
        let m = example_machine();
        let b = m.op_by_name("B").unwrap();
        let mut bv = BitvecModule::new(&m, WordLayout::with_k(64, 8));
        let mut ds = DiscreteModule::new(&m);
        bv.check(b, 0);
        ds.check(b, 0);
        // B's 8 usages span cycles 0..=7: one 8-cycle word vs 8 entries.
        assert_eq!(bv.counters().check.units, 1);
        assert_eq!(ds.counters().check.units, 8);
    }

    #[test]
    fn mixed_assign_then_assign_free_evicts_assigned_instance() {
        let (_, mut q, _, b) = module(4);
        q.assign(OpInstance(0), b, 0);
        let evicted = q.assign_free(OpInstance(1), b, 3);
        assert_eq!(evicted, vec![OpInstance(0)]);
    }

    #[test]
    fn reset_returns_to_optimistic_mode() {
        let (_, mut q, _, b) = module(4);
        q.assign_free(OpInstance(0), b, 0);
        q.assign_free(OpInstance(1), b, 1);
        assert!(q.in_update_mode());
        q.reset();
        assert!(!q.in_update_mode());
        assert!(q.check(b, 0));
        assert_eq!(q.counters().transitions, 0);
    }
}
