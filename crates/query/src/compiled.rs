//! Machine descriptions compiled into query-friendly forms.

use rmd_machine::{MachineDescription, OpId};

/// Per-operation usage lists: `(resource index, cycle)` pairs sorted by
/// cycle then resource — the iteration order of the discrete functions.
#[derive(Clone, Debug)]
pub(crate) struct CompiledUsages {
    pub num_resources: usize,
    /// `usages[op] = [(resource, cycle), ...]`, sorted by (cycle, resource).
    pub usages: Vec<Vec<(u32, u32)>>,
    /// Table length (cycles) per op.
    pub length: Vec<u32>,
}

impl CompiledUsages {
    pub fn new(m: &MachineDescription) -> Self {
        let usages = m
            .operations()
            .iter()
            .map(|op| {
                let mut v: Vec<(u32, u32)> = op
                    .table()
                    .usages()
                    .iter()
                    .map(|u| (u.resource.0, u.cycle))
                    .collect();
                v.sort_unstable_by_key(|&(r, c)| (c, r));
                v
            })
            .collect();
        let length = m.operations().iter().map(|op| op.table().length()).collect();
        CompiledUsages {
            num_resources: m.num_resources(),
            usages,
            length,
        }
    }

    #[inline]
    pub fn of(&self, op: OpId) -> &[(u32, u32)] {
        &self.usages[op.index()]
    }
}

/// A reservation table compiled to per-alignment word masks for the
/// bitvector representation.
///
/// Cycle bitvectors (one bit per resource) are packed `k` per word. A
/// query at cycle `t` has alignment `a = t mod k` and base word
/// `t div k`; the compiled form stores, for each alignment, the list of
/// `(word offset, mask)` pairs of nonempty words.
#[derive(Clone, Debug)]
pub(crate) struct CompiledMasks {
    /// `masks[op][alignment] = [(word_offset, mask), ...]` sorted by offset.
    pub masks: Vec<Vec<Vec<(u32, u64)>>>,
}

impl CompiledMasks {
    /// Compiles `m` with `k` cycles per word. Requires
    /// `k * num_resources <= 64` (the paper's "k bitvectors packed per
    /// memory word" with 32- or 64-bit words; storage here is always
    /// `u64`, the logical word size is enforced by the caller's choice of
    /// `k`).
    ///
    /// # Panics
    ///
    /// Panics if a word cannot hold `k` cycle-bitvectors.
    pub fn new(m: &MachineDescription, k: u32) -> Self {
        let nr = m.num_resources() as u32;
        assert!(k >= 1, "need at least one cycle per word");
        assert!(
            k * nr <= 64,
            "k={k} cycles of {nr} resources exceed a 64-bit word"
        );
        let masks = m
            .operations()
            .iter()
            .map(|op| {
                (0..k)
                    .map(|a| {
                        let mut words: Vec<(u32, u64)> = Vec::new();
                        for u in op.table().usages() {
                            let gc = u.cycle + a;
                            let w = gc / k;
                            let bit = (gc % k) * nr + u.resource.0;
                            match words.binary_search_by_key(&w, |&(wo, _)| wo) {
                                Ok(i) => words[i].1 |= 1u64 << bit,
                                Err(i) => words.insert(i, (w, 1u64 << bit)),
                            }
                        }
                        words
                    })
                    .collect()
            })
            .collect();
        CompiledMasks { masks }
    }

    #[inline]
    pub fn of(&self, op: OpId, alignment: u32) -> &[(u32, u64)] {
        &self.masks[op.index()][alignment as usize]
    }
}

/// Eagerly expanded modulo reservation masks: for every (operation,
/// issue-slot) pair under one initiation interval, the `(word, mask)`
/// list of nonempty packed words the reservation touches.
///
/// This is the fully materialized form of the lazy per-slot expansion
/// the modulo bitvector module used to compute on first use: all
/// `num_ops × II` slot lists live in two flat arrays (an offset table
/// plus one contiguous word list), so the hot `check` path is a slice
/// index followed by word AND/OR — no `Option` probe, no insertion, no
/// allocation.
#[derive(Clone, Debug)]
pub(crate) struct ModuloMasks {
    ii: u32,
    /// `start[op * ii + slot] .. start[op * ii + slot + 1]` indexes
    /// `words`.
    start: Vec<u32>,
    /// All slot lists, concatenated in (op, slot) order.
    words: Vec<(u32, u64)>,
}

impl ModuloMasks {
    /// Expands every (op, slot) pair of `usages` for modulo tables with
    /// initiation interval `ii`, packed `k` cycle-bitvectors per word.
    ///
    /// # Panics
    ///
    /// Panics if `ii == 0`, `k == 0`, or a word cannot hold `k`
    /// cycle-bitvectors of this machine.
    pub fn new(usages: &CompiledUsages, ii: u32, k: u32) -> Self {
        let nr = usages.num_resources as u32;
        assert!(ii > 0, "initiation interval must be positive");
        assert!(
            k >= 1 && k * nr <= 64,
            "k={k} cycles of {nr} resources exceed a 64-bit word"
        );
        let nops = usages.usages.len();
        let mut start = Vec::with_capacity(nops * ii as usize + 1);
        let mut words: Vec<(u32, u64)> = Vec::new();
        let mut scratch: Vec<(u32, u64)> = Vec::new();
        start.push(0u32);
        for us in &usages.usages {
            for slot in 0..ii {
                scratch.clear();
                for &(r, c) in us {
                    let s = ((u64::from(slot) + u64::from(c)) % u64::from(ii)) as u32;
                    let w = s / k;
                    let bit = (s % k) * nr + r;
                    match scratch.binary_search_by_key(&w, |&(wo, _)| wo) {
                        Ok(i) => scratch[i].1 |= 1u64 << bit,
                        Err(i) => scratch.insert(i, (w, 1u64 << bit)),
                    }
                }
                words.extend_from_slice(&scratch);
                start.push(words.len() as u32);
            }
        }
        ModuloMasks { ii, start, words }
    }

    /// The nonempty `(word, mask)` pairs of `op` issued in `slot`
    /// (`slot < ii`).
    #[inline]
    pub fn of(&self, op: OpId, slot: u32) -> &[(u32, u64)] {
        let i = op.index() * self.ii as usize + slot as usize;
        &self.words[self.start[i] as usize..self.start[i + 1] as usize]
    }

    /// The initiation interval the masks were expanded for.
    pub fn ii(&self) -> u32 {
        self.ii
    }

    /// Total `(word, mask)` entries across all slot lists — the
    /// footprint reported by cache statistics.
    pub fn num_entries(&self) -> usize {
        self.words.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rmd_machine::MachineBuilder;

    fn toy() -> MachineDescription {
        let mut b = MachineBuilder::new("t");
        let r0 = b.resource("r0");
        let r1 = b.resource("r1");
        b.operation("x").usage(r0, 0).usage(r1, 2).finish();
        b.build().unwrap()
    }

    #[test]
    fn usages_sorted_by_cycle() {
        let m = toy();
        let c = CompiledUsages::new(&m);
        assert_eq!(c.of(OpId(0)), &[(0, 0), (1, 2)]);
        assert_eq!(c.length[0], 3);
        assert_eq!(c.num_resources, 2);
    }

    #[test]
    fn masks_pack_cycles_into_words() {
        let m = toy();
        // k=2, 2 resources: bits [c_local*2 + r].
        let c = CompiledMasks::new(&m, 2);
        // Alignment 0: cycle 0 -> word 0 bit 0; cycle 2 -> word 1 bit 1.
        assert_eq!(c.of(OpId(0), 0), &[(0, 0b01), (1, 0b10)]);
        // Alignment 1: cycle 1 -> word 0 bit (1*2+0)=2; cycle 3 -> word 1
        // bit (1*2+1)=3.
        assert_eq!(c.of(OpId(0), 1), &[(0, 0b100), (1, 0b1000)]);
    }

    #[test]
    fn masks_merge_same_word() {
        let mut b = MachineBuilder::new("t");
        let r0 = b.resource("r0");
        let r1 = b.resource("r1");
        b.operation("x").usage(r0, 0).usage(r1, 1).finish();
        let m = b.build().unwrap();
        let c = CompiledMasks::new(&m, 2);
        // Both cycles in word 0: bits 0 and (1*2+1)=3.
        assert_eq!(c.of(OpId(0), 0), &[(0, 0b1001)]);
    }

    #[test]
    fn modulo_masks_wrap_around_the_table() {
        let m = toy(); // x: r0@0, r1@2; nr=2
        let c = CompiledUsages::new(&m);
        let mm = ModuloMasks::new(&c, 4, 2);
        assert_eq!(mm.ii(), 4);
        // Slot 0: cycles {0, 2} -> slots {0, 2}: word 0 bit 0, word 1
        // bit (0*2+1)=1.
        assert_eq!(mm.of(OpId(0), 0), &[(0, 0b01), (1, 0b10)]);
        // Slot 3 wraps: r0 -> slot 3 (word 1, bit (1*2+0)=2); r1 -> slot
        // (3+2)%4=1 (word 0, bit (1*2+1)=3).
        assert_eq!(mm.of(OpId(0), 3), &[(0, 0b1000), (1, 0b100)]);
        assert_eq!(mm.num_entries(), 8); // 4 slots x 2 words each
    }

    #[test]
    #[should_panic(expected = "exceed a 64-bit word")]
    fn masks_reject_oversized_k() {
        let mut b = MachineBuilder::new("t");
        for i in 0..33 {
            b.resource(format!("r{i}"));
        }
        let r = rmd_machine::ResourceId(0);
        b.operation("x").usage(r, 0).finish();
        let m = b.build().unwrap();
        let _ = CompiledMasks::new(&m, 2);
    }
}
