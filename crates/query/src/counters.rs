//! Work-unit instrumentation (paper §8: "one unit of work handles a
//! single resource usage or a single non-empty word").
//!
//! The counter types live in [`rmd_obs`] — the shared observability
//! layer — so the discrete, bitvector, compiled, modulo, and automata
//! backends all count through one path
//! ([`WorkCounters::record`](rmd_obs::WorkCounters::record)) and export
//! into one metric registry. This module re-exports them under their
//! historical home; existing `rmd_query::WorkCounters` users are
//! unaffected.

pub use rmd_obs::{FnCounter, QueryFn, WorkCounters};
