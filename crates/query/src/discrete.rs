//! The discrete-representation query module.

use crate::compiled::CompiledUsages;
use crate::counters::{QueryFn, WorkCounters};
use crate::registry::{OpInstance, Registry};
#[cfg(debug_assertions)]
use crate::trace::{ProtocolChecker, QueryEvent};
use crate::traits::ContentionQuery;
use rmd_machine::{MachineDescription, OpId};

/// Contention query module over a *discrete* reserved table: one entry
/// per (resource, schedule cycle), carrying the owning instance
/// (paper §5 "discrete representation", §7 functions).
///
/// The reserved table grows on demand as operations are placed in later
/// cycles. Work units: one per reserved-table entry touched.
///
/// # Example
///
/// ```
/// use rmd_machine::models::mips_r3000;
/// use rmd_query::{ContentionQuery, DiscreteModule, OpInstance};
///
/// let m = mips_r3000();
/// let div = m.op_by_name("div.s").unwrap();
/// let mut q = DiscreteModule::new(&m);
/// q.assign(OpInstance(0), div, 0);
/// assert!(!q.check(div, 3)); // divider still busy
/// let evicted = q.assign_free(OpInstance(1), div, 3);
/// assert_eq!(evicted, vec![OpInstance(0)]); // first div unscheduled
/// assert!(q.check(div, 30));
/// ```
#[derive(Clone, Debug)]
pub struct DiscreteModule {
    compiled: CompiledUsages,
    /// `owner[cycle * num_resources + r]`.
    owner: Vec<Option<OpInstance>>,
    horizon: u32,
    registry: Registry,
    counters: WorkCounters,
    /// Debug builds validate the query protocol on every call.
    #[cfg(debug_assertions)]
    guard: ProtocolChecker,
}

impl DiscreteModule {
    /// Creates an empty partial schedule over `machine`.
    pub fn new(machine: &MachineDescription) -> Self {
        DiscreteModule {
            compiled: CompiledUsages::new(machine),
            owner: Vec::new(),
            horizon: 0,
            registry: Registry::new(),
            counters: WorkCounters::new(),
            #[cfg(debug_assertions)]
            guard: ProtocolChecker::new(machine),
        }
    }

    /// Debug-only protocol enforcement: panics with a structured
    /// [`crate::ProtocolViolation`] message on misuse of the four query
    /// functions. Release builds compile this away entirely.
    #[cfg(debug_assertions)]
    #[inline]
    fn guard(&mut self, event: QueryEvent) {
        if let Err(v) = self.guard.observe(&event) {
            panic!("query-protocol violation in DiscreteModule: {v}");
        }
    }

    fn ensure_horizon(&mut self, cycles: u32) {
        if cycles > self.horizon {
            let nr = self.compiled.num_resources;
            self.owner.resize(cycles as usize * nr, None);
            self.horizon = cycles;
        }
    }

    #[inline]
    fn slot(&self, r: u32, cycle: u32) -> usize {
        cycle as usize * self.compiled.num_resources + r as usize
    }

    /// The instance occupying `(resource r, cycle)`, if any — exposed for
    /// backtracking schedulers that want to inspect conflicts without
    /// committing (beyond the paper's four functions, but in the spirit
    /// of its owner fields).
    pub fn owner_of(&self, r: u32, cycle: u32) -> Option<OpInstance> {
        if cycle >= self.horizon {
            None
        } else {
            self.owner[self.slot(r, cycle)]
        }
    }
}

impl ContentionQuery for DiscreteModule {
    fn check(&mut self, op: OpId, cycle: u32) -> bool {
        let mut units = 0;
        let mut clear = true;
        for &(r, c) in self.compiled.of(op) {
            units += 1;
            let gc = cycle + c;
            if gc < self.horizon && self.owner[self.slot(r, gc)].is_some() {
                clear = false; // abort on first contention
                break;
            }
        }
        self.counters.record(QueryFn::Check, units);
        clear
    }

    fn assign(&mut self, inst: OpInstance, op: OpId, cycle: u32) {
        #[cfg(debug_assertions)]
        self.guard(QueryEvent::Assign { inst, op, cycle });
        self.ensure_horizon(cycle + self.compiled.length[op.index()]);
        for &(r, c) in self.compiled.of(op) {
            let s = self.slot(r, cycle + c);
            debug_assert!(self.owner[s].is_none(), "assign over a reservation");
            self.owner[s] = Some(inst);
        }
        self.counters
            .record(QueryFn::Assign, self.compiled.of(op).len() as u64);
        self.registry.insert(inst, op, cycle);
    }

    fn assign_free(&mut self, inst: OpInstance, op: OpId, cycle: u32) -> Vec<OpInstance> {
        #[cfg(debug_assertions)]
        self.guard(QueryEvent::AssignFree { inst, op, cycle });
        self.ensure_horizon(cycle + self.compiled.length[op.index()]);
        let mut units = 0;
        let mut evicted = Vec::new();
        for ui in 0..self.compiled.of(op).len() {
            let (r, c) = self.compiled.of(op)[ui];
            units += 1;
            let s = self.slot(r, cycle + c);
            if let Some(holder) = self.owner[s] {
                if holder != inst {
                    // Unschedule the conflicting instance entirely.
                    let (hop, hcycle) = self
                        .registry
                        .remove(holder)
                        .expect("owner entries always track registered instances");
                    for &(hr, hc) in self.compiled.of(hop) {
                        units += 1;
                        let hs = self.slot(hr, hcycle + hc);
                        self.owner[hs] = None;
                    }
                    evicted.push(holder);
                }
            }
            self.owner[s] = Some(inst);
        }
        self.counters.record(QueryFn::AssignFree, units);
        self.registry.insert(inst, op, cycle);
        evicted
    }

    fn free(&mut self, inst: OpInstance, op: OpId, cycle: u32) {
        #[cfg(debug_assertions)]
        self.guard(QueryEvent::Free { inst, op, cycle });
        let removed = self.registry.remove(inst);
        debug_assert_eq!(removed, Some((op, cycle)), "free of unscheduled instance");
        for &(r, c) in self.compiled.of(op) {
            let s = self.slot(r, cycle + c);
            debug_assert_eq!(self.owner[s], Some(inst), "free of foreign reservation");
            self.owner[s] = None;
        }
        self.counters
            .record(QueryFn::Free, self.compiled.of(op).len() as u64);
    }

    fn counters(&self) -> &WorkCounters {
        &self.counters
    }

    fn counters_mut(&mut self) -> &mut WorkCounters {
        &mut self.counters
    }

    fn reset(&mut self) {
        self.owner.fill(None);
        self.registry.clear();
        self.counters.reset();
        #[cfg(debug_assertions)]
        self.guard.reset();
    }

    fn num_scheduled(&self) -> usize {
        self.registry.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rmd_machine::models::example_machine;

    fn setup() -> (MachineDescription, DiscreteModule, OpId, OpId) {
        let m = example_machine();
        let a = m.op_by_name("A").unwrap();
        let b = m.op_by_name("B").unwrap();
        let q = DiscreteModule::new(&m);
        (m, q, a, b)
    }

    #[test]
    fn check_respects_forbidden_latencies() {
        let (_, mut q, a, b) = setup();
        q.assign(OpInstance(0), a, 5);
        // F[B][A] = {1}: B may not issue at 6.
        assert!(!q.check(b, 6));
        assert!(q.check(b, 5));
        assert!(q.check(b, 7));
        // F[A][A] = {0}.
        assert!(!q.check(a, 5));
        assert!(q.check(a, 6));
    }

    #[test]
    fn assign_then_free_restores_emptiness() {
        let (_, mut q, _, b) = setup();
        q.assign(OpInstance(1), b, 3);
        assert!(!q.check(b, 4));
        q.free(OpInstance(1), b, 3);
        assert!(q.check(b, 4));
        assert_eq!(q.num_scheduled(), 0);
    }

    #[test]
    fn assign_free_evicts_all_conflicting_instances() {
        let (_, mut q, _, b) = setup();
        q.assign(OpInstance(0), b, 0);
        q.assign(OpInstance(1), b, 4); // 4 ∉ F[B][B]: legal
        // B at 2 conflicts with both (|Δ| ≤ 3).
        let evicted = q.assign_free(OpInstance(2), b, 2);
        let mut e = evicted.clone();
        e.sort();
        assert_eq!(e, vec![OpInstance(0), OpInstance(1)]);
        assert_eq!(q.num_scheduled(), 1);
        // The evicted slots are free again except where inst2 sits.
        assert!(q.check(b, 6));
    }

    #[test]
    fn assign_free_without_conflict_evicts_nothing() {
        let (_, mut q, a, b) = setup();
        q.assign(OpInstance(0), a, 0);
        let evicted = q.assign_free(OpInstance(1), b, 0);
        assert!(evicted.is_empty());
        assert_eq!(q.num_scheduled(), 2);
    }

    #[test]
    fn work_units_count_usages() {
        let (_, mut q, a, b) = setup();
        // A has 3 usages; a clean check touches all 3.
        q.check(a, 0);
        assert_eq!(q.counters().check.units, 3);
        q.assign(OpInstance(0), a, 0);
        assert_eq!(q.counters().assign.units, 3);
        // B has 8 usages; checking B@1 aborts at the first conflict
        // (A@0 uses stage1 in cycle 1 = B@1's first usage, stage1@0).
        q.check(b, 1);
        assert!(q.counters().check.units <= 3 + 8);
        assert!(q.counters().check.units > 3);
    }

    #[test]
    fn reset_clears_state_and_counters() {
        let (_, mut q, a, _) = setup();
        q.assign(OpInstance(0), a, 0);
        q.check(a, 0);
        q.reset();
        assert!(q.check(a, 0));
        assert_eq!(q.counters().check.calls, 1);
        assert_eq!(q.num_scheduled(), 0);
    }

    #[test]
    fn owner_of_reports_holder() {
        let (_, mut q, a, _) = setup();
        q.assign(OpInstance(7), a, 2);
        // A uses stage0 (r0) at cycle 2.
        assert_eq!(q.owner_of(0, 2), Some(OpInstance(7)));
        assert_eq!(q.owner_of(0, 3), None);
        assert_eq!(q.owner_of(0, 1000), None);
    }
}
