//! The eager (compiled-mask, always-owned) query module.

use crate::compiled::{CompiledMasks, CompiledUsages};
use crate::counters::{QueryFn, WorkCounters};
use crate::registry::{OpInstance, Registry};
#[cfg(debug_assertions)]
use crate::trace::{ProtocolChecker, QueryEvent};
use crate::traits::ContentionQuery;
use crate::window::{self, LoadCache, WindowScan};
use crate::WordLayout;
use rmd_machine::{MachineDescription, OpId};

/// Contention query module that pairs the bitvector word masks with an
/// owner table that is maintained from the very first `assign` on.
///
/// [`BitvecModule`](crate::BitvecModule) starts *optimistic* (no owner
/// fields) and pays a one-time scan of the scheduled-operation list the
/// first time `assign_free` hits a conflict. This module instead keeps
/// the owner table hot at all times: `check` is still a branch-light
/// word AND over the compiled masks, but `assign`/`free` additionally
/// write per-usage owner entries, so `assign_free` never transitions —
/// its cost is deterministic per call. That trade is the right one for
/// backtracking schedulers that unschedule frequently, and it gives the
/// conformance suite a third linear backend with distinct internals.
///
/// Work units: one per nonempty word for `check`/`assign`/`free`, one
/// per usage for `assign_free` — the same accounting as the bitvector
/// module's update mode.
///
/// # Example
///
/// ```
/// use rmd_machine::models::example_machine;
/// use rmd_query::{CompiledModule, ContentionQuery, OpInstance, WordLayout};
///
/// let m = example_machine();
/// let b = m.op_by_name("B").unwrap();
/// let mut q = CompiledModule::new(&m, WordLayout::widest(64, m.num_resources()));
/// q.assign(OpInstance(0), b, 0);
/// assert!(!q.check(b, 1)); // 1 ∈ F[B][B]
/// let evicted = q.assign_free(OpInstance(1), b, 1);
/// assert_eq!(evicted, vec![OpInstance(0)]);
/// ```
#[derive(Clone, Debug)]
pub struct CompiledModule {
    masks: CompiledMasks,
    usages: CompiledUsages,
    layout: WordLayout,
    words: Vec<u64>,
    /// Always maintained: `owner[cycle * num_resources + r]`.
    owner: Vec<Option<OpInstance>>,
    horizon_cycles: u32,
    registry: Registry,
    counters: WorkCounters,
    /// Debug builds validate the query protocol on every call.
    #[cfg(debug_assertions)]
    guard: ProtocolChecker,
}

impl CompiledModule {
    /// Creates an empty partial schedule over `machine` with the given
    /// word layout.
    ///
    /// # Panics
    ///
    /// Panics if `layout.k * machine.num_resources()` exceeds 64 bits.
    pub fn new(machine: &MachineDescription, layout: WordLayout) -> Self {
        CompiledModule {
            masks: CompiledMasks::new(machine, layout.k),
            usages: CompiledUsages::new(machine),
            layout,
            words: Vec::new(),
            owner: Vec::new(),
            horizon_cycles: 0,
            registry: Registry::new(),
            counters: WorkCounters::new(),
            #[cfg(debug_assertions)]
            guard: ProtocolChecker::new(machine),
        }
    }

    /// Debug-only protocol enforcement; see
    /// [`DiscreteModule`](crate::DiscreteModule) for the same hook.
    #[cfg(debug_assertions)]
    #[inline]
    fn guard(&mut self, event: QueryEvent) {
        if let Err(v) = self.guard.observe(&event) {
            panic!("query-protocol violation in CompiledModule: {v}");
        }
    }

    /// The word layout in use.
    pub fn layout(&self) -> WordLayout {
        self.layout
    }

    /// The instance holding resource `r` at `cycle`, if any.
    pub fn owner_of(&self, r: u32, cycle: u32) -> Option<OpInstance> {
        self.owner.get(self.slot(r, cycle)).copied().flatten()
    }

    fn ensure_horizon(&mut self, cycles: u32) {
        if cycles > self.horizon_cycles {
            let words = (cycles as usize).div_ceil(self.layout.k as usize) + 1;
            if words > self.words.len() {
                self.words.resize(words, 0);
            }
            self.owner
                .resize(cycles as usize * self.usages.num_resources, None);
            self.horizon_cycles = cycles;
        }
    }

    #[inline]
    fn slot(&self, r: u32, cycle: u32) -> usize {
        cycle as usize * self.usages.num_resources + r as usize
    }

    /// Word-parallel window scan; identical batching to
    /// [`BitvecModule`](crate::BitvecModule) — the owner table plays no
    /// part in `check`, so the scan is the same word walk with a
    /// one-entry load cache.
    fn window_scan(&mut self, op: OpId, start: u32, len: u32, stop_at_free: bool) -> WindowScan {
        let len = len.min(64);
        let k = self.layout.k;
        let mut cache = LoadCache::new();
        let mut out = WindowScan::default();
        for i in 0..len {
            let Some(cycle) = start.checked_add(i) else {
                break;
            };
            let (a, base) = (cycle % k, (cycle / k) as usize);
            out.probed += 1;
            let mut clear = true;
            for &(off, m) in self.masks.of(op, a) {
                out.eq_units += 1;
                let idx = base + off as usize;
                let w = cache.read(idx, || self.words.get(idx).copied().unwrap_or(0));
                if w & m != 0 {
                    clear = false;
                    break;
                }
            }
            if clear {
                out.mask |= 1u64 << i;
                if out.first_free.is_none() {
                    out.first_free = Some(cycle);
                }
                if stop_at_free {
                    break;
                }
            }
        }
        out.loads = cache.loads;
        out
    }

    /// Clears the flag bit and owner entry of one (resource, cycle).
    fn clear_usage(&mut self, r: u32, gc: u32) {
        let s = self.slot(r, gc);
        self.owner[s] = None;
        let k = self.layout.k;
        let bit = (gc % k) * self.usages.num_resources as u32 + r;
        self.words[(gc / k) as usize] &= !(1u64 << bit);
    }
}

impl ContentionQuery for CompiledModule {
    fn check(&mut self, op: OpId, cycle: u32) -> bool {
        let k = self.layout.k;
        let (a, base) = (cycle % k, (cycle / k) as usize);
        let mut units = 0;
        let mut clear = true;
        for &(off, m) in self.masks.of(op, a) {
            units += 1;
            let w = self.words.get(base + off as usize).copied().unwrap_or(0);
            if w & m != 0 {
                clear = false;
                break;
            }
        }
        self.counters.record(QueryFn::Check, units);
        clear
    }

    fn assign(&mut self, inst: OpInstance, op: OpId, cycle: u32) {
        #[cfg(debug_assertions)]
        self.guard(QueryEvent::Assign { inst, op, cycle });
        self.ensure_horizon(cycle + self.usages.length[op.index()]);
        let k = self.layout.k;
        let (a, base) = (cycle % k, (cycle / k) as usize);
        for i in 0..self.masks.of(op, a).len() {
            let (off, m) = self.masks.of(op, a)[i];
            let w = &mut self.words[base + off as usize];
            debug_assert_eq!(*w & m, 0, "assign over a reservation");
            *w |= m;
        }
        self.counters
            .record(QueryFn::Assign, self.masks.of(op, a).len() as u64);
        for i in 0..self.usages.of(op).len() {
            let (r, c) = self.usages.of(op)[i];
            let s = self.slot(r, cycle + c);
            self.owner[s] = Some(inst);
        }
        self.registry.insert(inst, op, cycle);
    }

    fn assign_free(&mut self, inst: OpInstance, op: OpId, cycle: u32) -> Vec<OpInstance> {
        #[cfg(debug_assertions)]
        self.guard(QueryEvent::AssignFree { inst, op, cycle });
        self.ensure_horizon(cycle + self.usages.length[op.index()]);
        let mut units = 0;
        let mut evicted = Vec::new();
        for i in 0..self.usages.of(op).len() {
            let (r, c) = self.usages.of(op)[i];
            units += 1;
            let gc = cycle + c;
            if let Some(holder) = self.owner[self.slot(r, gc)] {
                if holder != inst {
                    let (hop, hcycle) = self
                        .registry
                        .remove(holder)
                        .expect("owner entries track registered instances");
                    for j in 0..self.usages.of(hop).len() {
                        let (hr, hc) = self.usages.of(hop)[j];
                        units += 1;
                        self.clear_usage(hr, hcycle + hc);
                    }
                    evicted.push(holder);
                }
            }
            let s = self.slot(r, gc);
            self.owner[s] = Some(inst);
            let k = self.layout.k;
            let bit = (gc % k) * self.usages.num_resources as u32 + r;
            self.words[(gc / k) as usize] |= 1u64 << bit;
        }
        self.counters.record(QueryFn::AssignFree, units);
        self.registry.insert(inst, op, cycle);
        evicted
    }

    fn free(&mut self, inst: OpInstance, op: OpId, cycle: u32) {
        #[cfg(debug_assertions)]
        self.guard(QueryEvent::Free { inst, op, cycle });
        let removed = self.registry.remove(inst);
        debug_assert_eq!(removed, Some((op, cycle)), "free of unscheduled instance");
        let k = self.layout.k;
        let (a, base) = (cycle % k, (cycle / k) as usize);
        for i in 0..self.masks.of(op, a).len() {
            let (off, m) = self.masks.of(op, a)[i];
            let w = &mut self.words[base + off as usize];
            debug_assert_eq!(*w & m, m, "free of unreserved bits");
            *w &= !m;
        }
        self.counters
            .record(QueryFn::Free, self.masks.of(op, a).len() as u64);
        for i in 0..self.usages.of(op).len() {
            let (r, c) = self.usages.of(op)[i];
            let s = self.slot(r, cycle + c);
            self.owner[s] = None;
        }
    }

    fn check_window(&mut self, op: OpId, start: u32, len: u32) -> u64 {
        let s = self.window_scan(op, start, len, false);
        s.record(&mut self.counters);
        s.mask
    }

    fn first_free_in(&mut self, op: OpId, start: u32, len: u32) -> Option<u32> {
        window::first_free_chunked(start, len, |s, l| {
            let scan = self.window_scan(op, s, l, true);
            scan.record(&mut self.counters);
            scan.first_free
        })
    }

    fn counters(&self) -> &WorkCounters {
        &self.counters
    }

    fn counters_mut(&mut self) -> &mut WorkCounters {
        &mut self.counters
    }

    fn reset(&mut self) {
        self.words.fill(0);
        self.owner.fill(None);
        self.registry.clear();
        self.counters.reset();
        #[cfg(debug_assertions)]
        self.guard.reset();
    }

    fn num_scheduled(&self) -> usize {
        self.registry.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::discrete::DiscreteModule;
    use rmd_machine::models::example_machine;

    fn module(k: u32) -> (MachineDescription, CompiledModule, OpId, OpId) {
        let m = example_machine();
        let a = m.op_by_name("A").unwrap();
        let b = m.op_by_name("B").unwrap();
        let q = CompiledModule::new(&m, WordLayout::with_k(64, k));
        (m, q, a, b)
    }

    #[test]
    fn check_matches_discrete_for_all_k() {
        let m = example_machine();
        let a = m.op_by_name("A").unwrap();
        let b = m.op_by_name("B").unwrap();
        for k in 1..=4 {
            let mut cm = CompiledModule::new(&m, WordLayout::with_k(64, k));
            let mut ds = DiscreteModule::new(&m);
            for (i, (op, cyc)) in [(b, 0u32), (a, 2), (b, 4)].iter().enumerate() {
                cm.assign(OpInstance(i as u32), *op, *cyc);
                ds.assign(OpInstance(i as u32), *op, *cyc);
            }
            for cyc in 0..16 {
                for op in [a, b] {
                    assert_eq!(cm.check(op, cyc), ds.check(op, cyc), "k={k} {op} @{cyc}");
                }
            }
        }
    }

    #[test]
    fn assign_free_evicts_like_discrete_without_transitions() {
        let (_, mut q, _, b) = module(4);
        q.assign(OpInstance(0), b, 0);
        q.assign(OpInstance(1), b, 4);
        let evicted = q.assign_free(OpInstance(2), b, 2);
        let mut e = evicted.clone();
        e.sort();
        assert_eq!(e, vec![OpInstance(0), OpInstance(1)]);
        assert_eq!(q.num_scheduled(), 1);
        // The owner table was live from the start: no rebuild happened.
        assert_eq!(q.counters().transitions, 0);
        assert!(q.check(b, 6));
    }

    #[test]
    fn free_restores_emptiness_and_owner_table() {
        let (_, mut q, a, b) = module(2);
        q.assign(OpInstance(0), a, 0);
        q.assign(OpInstance(1), b, 5);
        assert_eq!(q.owner_of(0, 0), Some(OpInstance(0)));
        q.free(OpInstance(1), b, 5);
        q.free(OpInstance(0), a, 0);
        assert!(q.check(a, 0));
        assert!(q.check(b, 5));
        assert_eq!(q.owner_of(0, 0), None);
        assert_eq!(q.num_scheduled(), 0);
    }

    #[test]
    fn reset_clears_state_and_counters() {
        let (_, mut q, _, b) = module(4);
        q.assign(OpInstance(0), b, 0);
        q.check(b, 1);
        q.reset();
        assert!(q.check(b, 0));
        assert_eq!(q.counters().check.calls, 1);
        assert_eq!(q.num_scheduled(), 0);
    }
}
