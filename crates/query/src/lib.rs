//! The contention query module (paper §7).
//!
//! A scheduler asks, millions of times per compilation: *can operation X
//! be placed in cycle j of the current partial schedule without resource
//! contention?* This crate answers that query against a machine
//! description (original or reduced) using either of the paper's two
//! internal representations of the partial schedule:
//!
//! * [`DiscreteModule`] — a *reserved table* with one entry per
//!   (resource, cycle), each carrying an owner field so that conflicting
//!   operations can be unscheduled (`assign&free`). Query cost is linear
//!   in the operation's resource usages.
//! * [`BitvecModule`] — the flag bits packed `k` cycle-bitvectors per
//!   memory word, so `check` is one AND+test per nonempty word, `assign`
//!   an OR, and `free` an AND-NOT. `assign&free` starts in an
//!   *optimistic* mode without owner fields and falls back to an *update*
//!   mode (rebuilding owners by scanning the scheduled-operation list)
//!   the first time it must unschedule something.
//! * [`CompiledModule`] — the same packed words with an owner table
//!   maintained from the first `assign` on, so `assign&free` never pays
//!   the bitvector module's rebuild transition. A third linear backend
//!   with distinct internals, exercised by the cross-backend
//!   conformance suite.
//!
//! Both exist in linear-schedule form and in modulo form
//! ([`ModuloDiscreteModule`], [`ModuloBitvecModule`]) for software
//! pipelining, where a usage in cycle `c` of an operation issued at `t`
//! occupies slot `(t + c) mod II` of a *modulo reservation table*.
//!
//! Every module implements [`ContentionQuery`] and counts the paper's
//! *work units* — one unit per resource usage or nonempty word handled —
//! in a [`WorkCounters`], which is how Table 6 is reproduced.
//!
//! Schedulers that scan many candidate cycles should use the batched
//! window queries ([`ContentionQuery::check_window`] /
//! [`ContentionQuery::first_free_in`]): the bitvector-backed modules
//! answer up to 64 consecutive cycles from a handful of word loads
//! while charging `check` exactly what the equivalent per-cycle loop
//! would have cost, so Table-6 numbers are unchanged and the batching
//! shows up only in the separate `check_window` counter.
//!
//! # Example
//!
//! ```
//! use rmd_machine::models::example_machine;
//! use rmd_query::{ContentionQuery, DiscreteModule, OpInstance};
//!
//! let m = example_machine();
//! let b = m.op_by_name("B").unwrap();
//! let mut q = DiscreteModule::new(&m);
//! assert!(q.check(b, 0));
//! q.assign(OpInstance(0), b, 0);
//! // A second B one cycle later collides (1 ∈ F[B][B]).
//! assert!(!q.check(b, 1));
//! // ... but four cycles later is fine (4 ∉ F[B][B]).
//! assert!(q.check(b, 4));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod alt;
mod bitvec;
mod compiled;
mod counters;
mod discrete;
mod eager;
mod metered;
mod modulo;
mod registry;
pub mod trace;
mod traits;
mod window;

pub use alt::{check_with_alt, first_free_with_alt};
pub use bitvec::{BitvecModule, WordLayout};
pub use counters::{FnCounter, QueryFn, WorkCounters};
pub use discrete::DiscreteModule;
pub use eager::CompiledModule;
pub use metered::MeteredQuery;
pub use modulo::{ModuloBitvecModule, ModuloDiscreteModule, ModuloMaskCache};
pub use registry::OpInstance;
pub use trace::{Answer, ProtocolChecker, ProtocolViolation, QueryEvent, QueryTrace, Response};
pub use traits::ContentionQuery;
