//! [`MeteredQuery`] — per-function latency metering around any
//! contention query backend.
//!
//! [`WorkCounters`] measure *work units*, the paper's machine-neutral
//! cost model. `MeteredQuery` adds the wall-clock side: one log2
//! histogram of call latencies per protocol function, recorded only
//! while [`rmd_obs`] tracing is enabled so the wrapper is free in
//! normal runs (one relaxed atomic load per call, no clock reads, no
//! allocation). The work counters stay byte-identical to the inner
//! module's — the wrapper delegates `counters()` untouched.

use crate::counters::{QueryFn, WorkCounters};
use crate::registry::OpInstance;
use crate::traits::ContentionQuery;
use rmd_machine::OpId;
use rmd_obs::{Histogram, MetricRegistry};
use std::time::Instant;

/// Wraps a [`ContentionQuery`] with per-function latency histograms.
///
/// Timing is gated on [`rmd_obs::is_enabled`]: when tracing is off,
/// every call is a plain delegation. The histograms live directly in
/// the struct (no map lookups on the hot path) and merge associatively,
/// so per-worker wrappers can be combined like the counters they extend.
///
/// # Example
///
/// ```
/// use rmd_machine::models::example_machine;
/// use rmd_query::{ContentionQuery, DiscreteModule, MeteredQuery, OpInstance, QueryFn};
///
/// let m = example_machine();
/// let b = m.op_by_name("B").unwrap();
/// let mut q = MeteredQuery::new(DiscreteModule::new(&m));
/// rmd_obs::set_enabled(true);
/// q.assign(OpInstance(0), b, 0);
/// assert!(!q.check(b, 1));
/// rmd_obs::set_enabled(false);
/// assert_eq!(q.latency(QueryFn::Check).count(), 1);
/// assert_eq!(q.counters().check.calls, 1); // work units: untouched
/// ```
#[derive(Clone, Debug)]
pub struct MeteredQuery<Q> {
    inner: Q,
    check_ns: Histogram,
    assign_ns: Histogram,
    assign_free_ns: Histogram,
    free_ns: Histogram,
    check_window_ns: Histogram,
}

impl<Q> MeteredQuery<Q> {
    /// Wraps `inner` with empty latency histograms.
    pub fn new(inner: Q) -> Self {
        MeteredQuery {
            inner,
            check_ns: Histogram::new(),
            assign_ns: Histogram::new(),
            assign_free_ns: Histogram::new(),
            free_ns: Histogram::new(),
            check_window_ns: Histogram::new(),
        }
    }

    /// The wrapped module.
    pub fn inner(&self) -> &Q {
        &self.inner
    }

    /// The wrapped module, mutably (latencies of direct calls through
    /// this reference are not recorded).
    pub fn inner_mut(&mut self) -> &mut Q {
        &mut self.inner
    }

    /// Unwraps the module, discarding the histograms.
    pub fn into_inner(self) -> Q {
        self.inner
    }

    /// The latency histogram (nanoseconds per call) of one function.
    /// For [`QueryFn::CheckWindow`] one sample covers a whole window
    /// query, however many cycles it probed.
    pub fn latency(&self, f: QueryFn) -> &Histogram {
        match f {
            QueryFn::Check => &self.check_ns,
            QueryFn::Assign => &self.assign_ns,
            QueryFn::AssignFree => &self.assign_free_ns,
            QueryFn::Free => &self.free_ns,
            QueryFn::CheckWindow => &self.check_window_ns,
        }
    }

    /// Merges another wrapper's latency histograms into this one
    /// (associative/commutative, like every obs merge).
    pub fn merge_latencies(&mut self, other: &MeteredQuery<Q>) {
        self.check_ns.merge(&other.check_ns);
        self.assign_ns.merge(&other.assign_ns);
        self.assign_free_ns.merge(&other.assign_free_ns);
        self.free_ns.merge(&other.free_ns);
        self.check_window_ns.merge(&other.check_window_ns);
    }

    #[inline]
    fn hist_mut(&mut self, f: QueryFn) -> &mut Histogram {
        match f {
            QueryFn::Check => &mut self.check_ns,
            QueryFn::Assign => &mut self.assign_ns,
            QueryFn::AssignFree => &mut self.assign_free_ns,
            QueryFn::Free => &mut self.free_ns,
            QueryFn::CheckWindow => &mut self.check_window_ns,
        }
    }

    #[inline]
    fn timed<R>(&mut self, f: QueryFn, body: impl FnOnce(&mut Q) -> R) -> R {
        if rmd_obs::is_enabled() {
            let t0 = Instant::now();
            let r = body(&mut self.inner);
            let ns = t0.elapsed().as_nanos() as u64;
            self.hist_mut(f).record(ns);
            r
        } else {
            body(&mut self.inner)
        }
    }
}

impl<Q: ContentionQuery> MeteredQuery<Q> {
    /// Exports everything this wrapper knows into a fresh registry:
    /// latency histograms `{prefix}.{fn}.latency_ns` plus the inner
    /// module's work counters under `{prefix}` (see
    /// [`WorkCounters::export_to`]).
    pub fn export_registry(&self, prefix: &str) -> MetricRegistry {
        let mut reg = MetricRegistry::new();
        for f in QueryFn::ALL {
            reg.merge_histogram(&format!("{prefix}.{}.latency_ns", f.name()), self.latency(f));
        }
        self.inner.counters().export_to(&mut reg, prefix);
        reg
    }
}

impl<Q: ContentionQuery> ContentionQuery for MeteredQuery<Q> {
    fn check(&mut self, op: OpId, cycle: u32) -> bool {
        self.timed(QueryFn::Check, |q| q.check(op, cycle))
    }

    fn assign(&mut self, inst: OpInstance, op: OpId, cycle: u32) {
        self.timed(QueryFn::Assign, |q| q.assign(inst, op, cycle));
    }

    fn assign_free(&mut self, inst: OpInstance, op: OpId, cycle: u32) -> Vec<OpInstance> {
        self.timed(QueryFn::AssignFree, |q| q.assign_free(inst, op, cycle))
    }

    fn free(&mut self, inst: OpInstance, op: OpId, cycle: u32) {
        self.timed(QueryFn::Free, |q| q.free(inst, op, cycle));
    }

    fn check_window(&mut self, op: OpId, start: u32, len: u32) -> u64 {
        self.timed(QueryFn::CheckWindow, |q| q.check_window(op, start, len))
    }

    fn first_free_in(&mut self, op: OpId, start: u32, len: u32) -> Option<u32> {
        // One sample per slot search, even when the inner module chunks
        // a long window into several `check_window`-metered scans.
        self.timed(QueryFn::CheckWindow, |q| q.first_free_in(op, start, len))
    }

    fn counters(&self) -> &WorkCounters {
        self.inner.counters()
    }

    fn counters_mut(&mut self) -> &mut WorkCounters {
        self.inner.counters_mut()
    }

    fn reset(&mut self) {
        self.inner.reset();
        self.check_ns = Histogram::new();
        self.assign_ns = Histogram::new();
        self.assign_free_ns = Histogram::new();
        self.free_ns = Histogram::new();
        self.check_window_ns = Histogram::new();
    }

    fn num_scheduled(&self) -> usize {
        self.inner.num_scheduled()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::discrete::DiscreteModule;
    use rmd_machine::models::example_machine;

    /// Serializes tests that toggle the global tracing flag.
    fn with_tracing<R>(f: impl FnOnce() -> R) -> R {
        static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
        let _g = LOCK.lock().unwrap();
        rmd_obs::set_enabled(true);
        let r = f();
        rmd_obs::set_enabled(false);
        r
    }

    fn metered() -> (rmd_machine::MachineDescription, MeteredQuery<DiscreteModule>, OpId) {
        let m = example_machine();
        let b = m.op_by_name("B").unwrap();
        let q = MeteredQuery::new(DiscreteModule::new(&m));
        (m, q, b)
    }

    #[test]
    fn latencies_record_only_while_enabled() {
        let (_, mut q, b) = metered();
        assert!(q.check(b, 0)); // disabled: no sample
        assert_eq!(q.latency(QueryFn::Check).count(), 0);
        with_tracing(|| {
            q.assign(OpInstance(0), b, 0);
            assert!(!q.check(b, 1));
            q.free(OpInstance(0), b, 0);
            let _ = q.assign_free(OpInstance(1), b, 0);
        });
        assert_eq!(q.latency(QueryFn::Check).count(), 1);
        assert_eq!(q.latency(QueryFn::Assign).count(), 1);
        assert_eq!(q.latency(QueryFn::Free).count(), 1);
        assert_eq!(q.latency(QueryFn::AssignFree).count(), 1);
        // Work counters saw every call, including the untimed one.
        assert_eq!(q.counters().check.calls, 2);
    }

    #[test]
    fn behaves_exactly_like_the_inner_module() {
        let m = example_machine();
        let b = m.op_by_name("B").unwrap();
        let mut plain = DiscreteModule::new(&m);
        let mut wrapped = MeteredQuery::new(DiscreteModule::new(&m));
        for (i, cycle) in [0u32, 4, 2].iter().enumerate() {
            let e1 = plain.assign_free(OpInstance(i as u32), b, *cycle);
            let e2 = wrapped.assign_free(OpInstance(i as u32), b, *cycle);
            assert_eq!(e1, e2);
        }
        for t in 0..12 {
            assert_eq!(plain.check(b, t), wrapped.check(b, t), "@{t}");
        }
        assert_eq!(plain.counters(), wrapped.counters());
        assert_eq!(plain.num_scheduled(), wrapped.num_scheduled());
    }

    #[test]
    fn export_registry_carries_latencies_and_counters() {
        let (_, mut q, b) = metered();
        with_tracing(|| {
            q.assign(OpInstance(0), b, 0);
            q.check(b, 1);
        });
        let reg = q.export_registry("query.discrete");
        assert_eq!(reg.histogram("query.discrete.check.latency_ns").unwrap().count(), 1);
        assert_eq!(reg.counter("query.discrete.assign.calls"), 1);
        assert_eq!(reg.counter("query.discrete.check.calls"), 1);
    }

    #[test]
    fn window_queries_record_one_latency_sample_each() {
        let (_, mut q, b) = metered();
        with_tracing(|| {
            q.assign(OpInstance(0), b, 0);
            let _ = q.check_window(b, 0, 8);
            let _ = q.first_free_in(b, 1, 10);
        });
        assert_eq!(q.latency(QueryFn::CheckWindow).count(), 2);
        // The inner module's work counters flow through untouched.
        assert_eq!(q.counters().check_window.calls, 2);
        let reg = q.export_registry("query.discrete");
        assert_eq!(
            reg.histogram("query.discrete.check_window.latency_ns").unwrap().count(),
            2
        );
        assert_eq!(reg.counter("query.discrete.check_window.calls"), 2);
    }

    #[test]
    fn reset_clears_histograms_and_inner_state() {
        let (_, mut q, b) = metered();
        with_tracing(|| {
            q.assign(OpInstance(0), b, 0);
        });
        q.reset();
        assert_eq!(q.latency(QueryFn::Assign).count(), 0);
        assert_eq!(q.counters().assign.calls, 0);
        assert_eq!(q.num_scheduled(), 0);
    }
}
