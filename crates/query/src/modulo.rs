//! Modulo reservation tables for software pipelining (paper §8).
//!
//! In a modulo schedule with initiation interval II, an operation issued
//! at cycle `t` uses its cycle-`c` resources in *slot* `(t + c) mod II`
//! of a table with II rows — every iteration repeats the same pattern.
//! Both query representations exist in modulo form; the scheduler
//! allocates one per scheduling attempt (II is fixed per attempt).

use crate::compiled::{CompiledUsages, ModuloMasks};
use crate::counters::{QueryFn, WorkCounters};
use crate::registry::{OpInstance, Registry};
use crate::traits::ContentionQuery;
use crate::window::{self, LoadCache, WindowScan};
use crate::WordLayout;
use rmd_machine::{MachineDescription, OpId};
use std::collections::HashMap;
use std::sync::Arc;

/// Discrete-representation modulo reservation table.
///
/// # Example
///
/// ```
/// use rmd_machine::models::example_machine;
/// use rmd_query::{ContentionQuery, ModuloDiscreteModule, OpInstance};
///
/// let m = example_machine();
/// let b = m.op_by_name("B").unwrap();
/// // II = 4: B self-conflicts at latencies {1,2,3} mod 4, so a second B
/// // can never be placed in a different slot...
/// let mut q = ModuloDiscreteModule::new(&m, 4);
/// q.assign(OpInstance(0), b, 0);
/// assert!(!q.check(b, 1));
/// assert!(!q.check(b, 7));
/// // ...and II = 8 leaves slots 4..=7 free.
/// let mut q = ModuloDiscreteModule::new(&m, 8);
/// q.assign(OpInstance(0), b, 0);
/// assert!(q.check(b, 4));
/// ```
#[derive(Clone, Debug)]
pub struct ModuloDiscreteModule {
    compiled: CompiledUsages,
    ii: u32,
    /// `owner[slot * num_resources + r]`, `slot ∈ 0..ii`.
    owner: Vec<Option<OpInstance>>,
    /// Per op: placeable at all under this II (no self-overlap of one
    /// resource slot across iterations)? Precomputed at construction.
    fits: Vec<bool>,
    registry: Registry,
    counters: WorkCounters,
}

/// Computes, for every op, whether its table avoids mapping two usages of
/// one resource to the same modulo slot.
fn compute_fits(usages: &CompiledUsages, ii: u32) -> Vec<bool> {
    usages
        .usages
        .iter()
        .map(|us| {
            for (i, &(r, c)) in us.iter().enumerate() {
                for &(r2, c2) in &us[i + 1..] {
                    if r == r2 && (c % ii) == (c2 % ii) {
                        return false;
                    }
                }
            }
            true
        })
        .collect()
}

impl ModuloDiscreteModule {
    /// Creates an empty modulo reservation table with the given
    /// initiation interval.
    ///
    /// # Panics
    ///
    /// Panics if `ii == 0`.
    pub fn new(machine: &MachineDescription, ii: u32) -> Self {
        assert!(ii > 0, "initiation interval must be positive");
        let compiled = CompiledUsages::new(machine);
        let owner = vec![None; ii as usize * compiled.num_resources];
        let fits = compute_fits(&compiled, ii);
        ModuloDiscreteModule {
            compiled,
            ii,
            owner,
            fits,
            registry: Registry::new(),
            counters: WorkCounters::new(),
        }
    }

    /// The initiation interval.
    pub fn ii(&self) -> u32 {
        self.ii
    }

    /// Whether `op` is placeable at all under this II (no two usages of
    /// one resource collapse onto the same modulo slot). Schedulers
    /// should bump II when any operation of the loop does not fit.
    pub fn fits(&self, op: OpId) -> bool {
        self.fits[op.index()]
    }

    #[inline]
    fn slot(&self, r: u32, cycle: u32, c: u32) -> usize {
        let s = (cycle as u64 + c as u64) % self.ii as u64;
        s as usize * self.compiled.num_resources + r as usize
    }

    /// Whether an operation with `count` usages of one resource slot per
    /// iteration can ever fit: used by ResMII-style feasibility checks.
    pub fn num_slots(&self) -> usize {
        self.owner.len()
    }
}

impl ContentionQuery for ModuloDiscreteModule {
    fn check(&mut self, op: OpId, cycle: u32) -> bool {
        // An op whose table is longer than II may self-overlap across
        // iterations (two usages of one resource in cycles c ≡ c' mod II
        // hit the same slot); such ops can never be placed under this II.
        if !self.fits[op.index()] {
            self.counters.record(QueryFn::Check, 0);
            return false;
        }
        let mut units = 0;
        let mut clear = true;
        for &(r, c) in self.compiled.of(op) {
            units += 1;
            if self.owner[self.slot(r, cycle, c)].is_some() {
                clear = false;
                break;
            }
        }
        self.counters.record(QueryFn::Check, units);
        clear
    }

    fn assign(&mut self, inst: OpInstance, op: OpId, cycle: u32) {
        for &(r, c) in self.compiled.of(op) {
            let s = self.slot(r, cycle, c);
            debug_assert!(self.owner[s].is_none(), "assign over a reservation");
            self.owner[s] = Some(inst);
        }
        self.counters
            .record(QueryFn::Assign, self.compiled.of(op).len() as u64);
        self.registry.insert(inst, op, cycle);
    }

    fn assign_free(&mut self, inst: OpInstance, op: OpId, cycle: u32) -> Vec<OpInstance> {
        let mut evicted = Vec::new();
        self.assign_free_into(inst, op, cycle, &mut evicted);
        evicted
    }

    fn assign_free_into(
        &mut self,
        inst: OpInstance,
        op: OpId,
        cycle: u32,
        evicted: &mut Vec<OpInstance>,
    ) {
        evicted.clear();
        let mut units = 0;
        for ui in 0..self.compiled.of(op).len() {
            let (r, c) = self.compiled.of(op)[ui];
            units += 1;
            let s = self.slot(r, cycle, c);
            if let Some(holder) = self.owner[s] {
                if holder != inst {
                    let (hop, hcycle) = self
                        .registry
                        .remove(holder)
                        .expect("owner entries track registered instances");
                    for &(hr, hc) in self.compiled.of(hop) {
                        units += 1;
                        let hs = self.slot(hr, hcycle, hc);
                        self.owner[hs] = None;
                    }
                    evicted.push(holder);
                }
            }
            self.owner[s] = Some(inst);
        }
        self.counters.record(QueryFn::AssignFree, units);
        self.registry.insert(inst, op, cycle);
    }

    fn free(&mut self, inst: OpInstance, op: OpId, cycle: u32) {
        let removed = self.registry.remove(inst);
        debug_assert_eq!(removed, Some((op, cycle)), "free of unscheduled instance");
        for &(r, c) in self.compiled.of(op) {
            let s = self.slot(r, cycle, c);
            debug_assert_eq!(self.owner[s], Some(inst), "free of foreign reservation");
            self.owner[s] = None;
        }
        self.counters
            .record(QueryFn::Free, self.compiled.of(op).len() as u64);
    }

    fn counters(&self) -> &WorkCounters {
        &self.counters
    }

    fn counters_mut(&mut self) -> &mut WorkCounters {
        &mut self.counters
    }

    fn reset(&mut self) {
        self.owner.fill(None);
        self.registry.clear();
        self.counters.reset();
    }

    fn num_scheduled(&self) -> usize {
        self.registry.len()
    }
}

/// Bitvector-representation modulo reservation table.
///
/// The II slots are packed `k` cycle-bitvectors per word
/// (`ceil(II / k)` words). Because a reservation wraps around the table,
/// the word masks of an operation depend on its issue slot modulo II;
/// they are expanded eagerly at construction (and shareable across
/// modules via [`ModuloMaskCache`]), so the hot `check` path is pure
/// word AND/OR over a precompiled slice — no lazy-fill branch.
#[derive(Clone, Debug)]
pub struct ModuloBitvecModule {
    usages: Arc<CompiledUsages>,
    layout: WordLayout,
    ii: u32,
    words: Vec<u64>,
    /// Eagerly expanded per-(op, slot) word masks, shared when built
    /// through a [`ModuloMaskCache`].
    masks: Arc<ModuloMasks>,
    fits: Arc<[bool]>,
    /// Owner table, only meaningful while `in_update` — kept allocated
    /// across [`refit`](Self::refit) so a later transition re-sizes
    /// within existing capacity instead of reallocating.
    owner: Vec<Option<OpInstance>>,
    in_update: bool,
    registry: Registry,
    counters: WorkCounters,
}

impl ModuloBitvecModule {
    /// Creates an empty modulo reservation table.
    ///
    /// # Panics
    ///
    /// Panics if `ii == 0` or a word cannot hold `layout.k`
    /// cycle-bitvectors of this machine.
    pub fn new(machine: &MachineDescription, ii: u32, layout: WordLayout) -> Self {
        assert!(ii > 0, "initiation interval must be positive");
        let usages = Arc::new(CompiledUsages::new(machine));
        let masks = Arc::new(ModuloMasks::new(&usages, ii, layout.k));
        let fits: Arc<[bool]> = compute_fits(&usages, ii).into();
        Self::from_parts(usages, masks, fits, layout)
    }

    /// Assembles a module from precompiled (possibly shared) parts; the
    /// constructor behind [`ModuloMaskCache::module`].
    pub(crate) fn from_parts(
        usages: Arc<CompiledUsages>,
        masks: Arc<ModuloMasks>,
        fits: Arc<[bool]>,
        layout: WordLayout,
    ) -> Self {
        let ii = masks.ii();
        let nwords = (ii as usize).div_ceil(layout.k as usize);
        ModuloBitvecModule {
            usages,
            layout,
            ii,
            words: vec![0; nwords],
            masks,
            fits,
            owner: Vec::new(),
            in_update: false,
            registry: Registry::new(),
            counters: WorkCounters::new(),
        }
    }

    /// Re-targets this module at a (possibly different) initiation
    /// interval, reusing every buffer the previous schedule already
    /// sized: the packed word vector, the owner table's capacity, and
    /// the registry's hash capacity. The compiled usages and word
    /// layout are unchanged — callers go through
    /// [`ModuloMaskCache::module_reusing`], which guards both.
    ///
    /// Steady state (an II already seen by this module) performs no
    /// heap allocation; behavior is byte-identical to a fresh
    /// [`from_parts`](Self::from_parts) module.
    pub(crate) fn refit(&mut self, masks: Arc<ModuloMasks>, fits: Arc<[bool]>) {
        let ii = masks.ii();
        let nwords = (ii as usize).div_ceil(self.layout.k as usize);
        self.ii = ii;
        self.masks = masks;
        self.fits = fits;
        self.words.clear();
        self.words.resize(nwords, 0);
        self.owner.clear();
        self.in_update = false;
        self.registry.clear();
        self.counters.reset();
    }

    /// The initiation interval.
    pub fn ii(&self) -> u32 {
        self.ii
    }

    /// Whether the module has transitioned to update mode.
    pub fn in_update_mode(&self) -> bool {
        self.in_update
    }

    /// Whether `op` is placeable at all under this II (see
    /// [`ModuloDiscreteModule::fits`]).
    pub fn fits(&self, op: OpId) -> bool {
        self.fits[op.index()]
    }

    fn transition_to_update(&mut self) {
        let nr = self.usages.num_resources;
        let ii = self.ii as u64;
        self.owner.clear();
        self.owner.resize(self.ii as usize * nr, None);
        let mut scanned = 0u64;
        for (inst, op, cycle) in self.registry.iter() {
            for &(r, c) in self.usages.of(op) {
                scanned += 1;
                let s = ((cycle as u64 + c as u64) % ii) as usize * nr + r as usize;
                self.owner[s] = Some(inst);
            }
        }
        self.counters.charge_units(QueryFn::AssignFree, scanned);
        self.counters.record_transition();
        self.in_update = true;
    }

    #[inline]
    fn flag_pos(&self, r: u32, cycle: u32, c: u32) -> (usize, u64) {
        let s = ((cycle as u64 + c as u64) % self.ii as u64) as u32;
        let k = self.layout.k;
        let bit = (s % k) * self.usages.num_resources as u32 + r;
        ((s / k) as usize, 1u64 << bit)
    }

    /// Word-parallel window scan over consecutive issue slots. The
    /// per-slot mask lists come from the eagerly expanded (and possibly
    /// [`ModuloMaskCache`]-shared) [`ModuloMasks`] arrays, so the inner
    /// loop is the same branch-light word AND as `check`; consecutive
    /// slots landing in one packed word share their load through a
    /// one-entry cache.
    fn window_scan(&mut self, op: OpId, start: u32, len: u32, stop_at_free: bool) -> WindowScan {
        let len = len.min(64);
        if !self.fits[op.index()] {
            // The scalar loop records one zero-unit `check` per cycle
            // and finds nothing; reproduce that without touching the
            // table (only cycles representable in u32 are probed).
            let valid = (u64::from(u32::MAX) - u64::from(start) + 1).min(u64::from(len));
            return WindowScan {
                probed: valid,
                ..WindowScan::default()
            };
        }
        let mut cache = LoadCache::new();
        let mut out = WindowScan::default();
        for i in 0..len {
            let Some(cycle) = start.checked_add(i) else {
                break;
            };
            let slot = cycle % self.ii;
            out.probed += 1;
            let mut clear = true;
            for &(w, m) in self.masks.of(op, slot) {
                out.eq_units += 1;
                let idx = w as usize;
                let v = cache.read(idx, || self.words[idx]);
                if v & m != 0 {
                    clear = false;
                    break;
                }
            }
            if clear {
                out.mask |= 1u64 << i;
                if out.first_free.is_none() {
                    out.first_free = Some(cycle);
                }
                if stop_at_free {
                    break;
                }
            }
        }
        out.loads = cache.loads;
        out
    }
}

impl ContentionQuery for ModuloBitvecModule {
    fn check(&mut self, op: OpId, cycle: u32) -> bool {
        if !self.fits[op.index()] {
            self.counters.record(QueryFn::Check, 0);
            return false;
        }
        let slot = cycle % self.ii;
        let mut units = 0;
        let mut clear = true;
        for &(w, m) in self.masks.of(op, slot) {
            units += 1;
            if self.words[w as usize] & m != 0 {
                clear = false;
                break;
            }
        }
        self.counters.record(QueryFn::Check, units);
        clear
    }

    fn assign(&mut self, inst: OpInstance, op: OpId, cycle: u32) {
        let slot = cycle % self.ii;
        for &(w, m) in self.masks.of(op, slot) {
            debug_assert_eq!(self.words[w as usize] & m, 0, "assign over a reservation");
            self.words[w as usize] |= m;
        }
        self.counters
            .record(QueryFn::Assign, self.masks.of(op, slot).len() as u64);
        if self.in_update {
            let nr = self.usages.num_resources;
            for &(r, c) in self.usages.of(op) {
                let s = ((cycle as u64 + c as u64) % self.ii as u64) as usize * nr + r as usize;
                self.owner[s] = Some(inst);
            }
        }
        self.registry.insert(inst, op, cycle);
    }

    fn assign_free(&mut self, inst: OpInstance, op: OpId, cycle: u32) -> Vec<OpInstance> {
        let mut evicted = Vec::new();
        self.assign_free_into(inst, op, cycle, &mut evicted);
        evicted
    }

    fn assign_free_into(
        &mut self,
        inst: OpInstance,
        op: OpId,
        cycle: u32,
        evicted: &mut Vec<OpInstance>,
    ) {
        evicted.clear();
        let slot = cycle % self.ii;
        let mut units = 0;

        if !self.in_update {
            let mut conflict = false;
            for &(w, m) in self.masks.of(op, slot) {
                units += 1;
                if self.words[w as usize] & m != 0 {
                    conflict = true;
                    break;
                }
            }
            if !conflict {
                // A second pass ORs the words in; the paper's unit is
                // "handling a word", already counted above.
                for &(w, m) in self.masks.of(op, slot) {
                    self.words[w as usize] |= m;
                }
                self.counters.record(QueryFn::AssignFree, units);
                self.registry.insert(inst, op, cycle);
                return;
            }
            // The rebuild scan is charged to assign&free inside the call.
            self.transition_to_update();
        }

        let nr = self.usages.num_resources;
        let ii = self.ii as u64;
        for ui in 0..self.usages.of(op).len() {
            let (r, c) = self.usages.of(op)[ui];
            units += 1;
            let s = ((cycle as u64 + c as u64) % ii) as usize * nr + r as usize;
            if let Some(holder) = self.owner[s] {
                if holder != inst {
                    let (hop, hcycle) = self
                        .registry
                        .remove(holder)
                        .expect("owner entries track registered instances");
                    for hj in 0..self.usages.of(hop).len() {
                        let (hr, hc) = self.usages.of(hop)[hj];
                        units += 1;
                        let hs = ((hcycle as u64 + hc as u64) % ii) as usize * nr + hr as usize;
                        self.owner[hs] = None;
                        let (w, m) = self.flag_pos(hr, hcycle, hc);
                        self.words[w] &= !m;
                    }
                    evicted.push(holder);
                }
            }
            self.owner[s] = Some(inst);
            let (w, m) = self.flag_pos(r, cycle, c);
            self.words[w] |= m;
        }
        self.counters.record(QueryFn::AssignFree, units);
        self.registry.insert(inst, op, cycle);
    }

    fn free(&mut self, inst: OpInstance, op: OpId, cycle: u32) {
        let removed = self.registry.remove(inst);
        debug_assert_eq!(removed, Some((op, cycle)), "free of unscheduled instance");
        let slot = cycle % self.ii;
        for &(w, m) in self.masks.of(op, slot) {
            debug_assert_eq!(self.words[w as usize] & m, m, "free of unreserved bits");
            self.words[w as usize] &= !m;
        }
        self.counters
            .record(QueryFn::Free, self.masks.of(op, slot).len() as u64);
        if self.in_update {
            let nr = self.usages.num_resources;
            for &(r, c) in self.usages.of(op) {
                let s = ((cycle as u64 + c as u64) % self.ii as u64) as usize * nr + r as usize;
                self.owner[s] = None;
            }
        }
    }

    fn check_window(&mut self, op: OpId, start: u32, len: u32) -> u64 {
        let s = self.window_scan(op, start, len, false);
        s.record(&mut self.counters);
        s.mask
    }

    fn first_free_in(&mut self, op: OpId, start: u32, len: u32) -> Option<u32> {
        window::first_free_chunked(start, len, |s, l| {
            let scan = self.window_scan(op, s, l, true);
            scan.record(&mut self.counters);
            scan.first_free
        })
    }

    fn counters(&self) -> &WorkCounters {
        &self.counters
    }

    fn counters_mut(&mut self) -> &mut WorkCounters {
        &mut self.counters
    }

    fn reset(&mut self) {
        self.words.fill(0);
        self.owner.clear();
        self.in_update = false;
        self.registry.clear();
        self.counters.reset();
    }

    fn num_scheduled(&self) -> usize {
        self.registry.len()
    }
}

/// One cached per-II expansion: the packed masks, the fits table, and
/// the last-use tick driving LRU eviction.
#[derive(Clone, Debug)]
struct CacheEntry {
    masks: Arc<ModuloMasks>,
    fits: Arc<[bool]>,
    last_use: u64,
}

/// A per-machine cache of modulo mask expansions, keyed by initiation
/// interval.
///
/// The iterative modulo scheduler constructs a fresh reservation table
/// for every II it attempts, and a suite run schedules many loops on
/// the same machine — so the same (op, slot) mask lists are expanded
/// over and over. This cache compiles the machine's usage lists once
/// and memoizes the per-II expansion behind `Arc`s: after the first
/// [`module`](Self::module) call for a given II, constructing another
/// table for that II is two reference-count bumps plus a zeroed word
/// vector.
///
/// Each worker thread of a parallel suite run owns one cache; sharing
/// is by `clone` of the compiled parts, never by locking.
///
/// # Example
///
/// ```
/// use rmd_machine::models::example_machine;
/// use rmd_query::{ContentionQuery, ModuloMaskCache, WordLayout};
///
/// let m = example_machine();
/// let b = m.op_by_name("B").unwrap();
/// let mut cache = ModuloMaskCache::new(&m, WordLayout::with_k(64, 4));
/// let mut q = cache.module(8);
/// assert!(q.check(b, 0));
/// let mut q2 = cache.module(8); // served from cache
/// assert_eq!((cache.hits(), cache.misses()), (1, 1));
/// assert!(q2.check(b, 0));
/// ```
#[derive(Clone, Debug)]
pub struct ModuloMaskCache {
    usages: Arc<CompiledUsages>,
    layout: WordLayout,
    /// Per-II expansion plus the last-use tick driving LRU eviction.
    by_ii: HashMap<u32, CacheEntry>,
    /// Monotonic access clock for LRU ordering.
    tick: u64,
    /// Maximum number of cached IIs; `None` is unbounded.
    entry_cap: Option<usize>,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl ModuloMaskCache {
    /// Creates an empty cache for `machine` under `layout`.
    ///
    /// # Panics
    ///
    /// Panics if a word cannot hold `layout.k` cycle-bitvectors of this
    /// machine.
    pub fn new(machine: &MachineDescription, layout: WordLayout) -> Self {
        let usages = Arc::new(CompiledUsages::new(machine));
        let nr = usages.num_resources as u32;
        assert!(
            layout.k >= 1 && layout.k * nr <= 64,
            "k={} cycles of {nr} resources exceed a 64-bit word",
            layout.k
        );
        ModuloMaskCache {
            usages,
            layout,
            by_ii: HashMap::new(),
            tick: 0,
            entry_cap: None,
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    /// Creates an empty cache bounded to at most `cap` cached IIs
    /// (least-recently-used expansions are evicted beyond that). A long-
    /// running daemon uses this so the cache cannot grow without limit.
    ///
    /// # Panics
    ///
    /// As [`new`](Self::new); additionally if `cap == 0`.
    pub fn with_cap(machine: &MachineDescription, layout: WordLayout, cap: usize) -> Self {
        let mut c = Self::new(machine, layout);
        c.set_entry_cap(Some(cap));
        c
    }

    /// Sets (or removes) the entry cap, evicting least-recently-used
    /// expansions immediately if the cache is over the new bound.
    ///
    /// # Panics
    ///
    /// Panics if `cap == Some(0)`: a cache that can hold nothing would
    /// silently disable sharing.
    pub fn set_entry_cap(&mut self, cap: Option<usize>) {
        assert!(cap != Some(0), "entry cap must be at least 1");
        self.entry_cap = cap;
        if let Some(cap) = cap {
            while self.by_ii.len() > cap {
                self.evict_lru();
            }
        }
    }

    /// The configured entry cap, if any.
    pub fn entry_cap(&self) -> Option<usize> {
        self.entry_cap
    }

    /// Removes the least-recently-used expansion. Eviction only drops
    /// the cache's own `Arc`s: modules already constructed from the
    /// evicted expansion keep their shared masks alive and are
    /// unaffected — eviction can never change query results, only
    /// force a re-expansion on the next request for that II.
    fn evict_lru(&mut self) {
        if let Some((&ii, _)) = self.by_ii.iter().min_by_key(|(_, e)| e.last_use) {
            self.by_ii.remove(&ii);
            self.evictions += 1;
        }
    }

    /// An empty modulo reservation table for `ii`, reusing (or building
    /// and memoizing) the mask expansion for that interval.
    ///
    /// # Panics
    ///
    /// Panics if `ii == 0`.
    pub fn module(&mut self, ii: u32) -> ModuloBitvecModule {
        assert!(ii > 0, "initiation interval must be positive");
        let (masks, fits) = self.parts(ii);
        ModuloBitvecModule::from_parts(Arc::clone(&self.usages), masks, fits, self.layout)
    }

    /// Like [`module`](Self::module), but re-targets the module already
    /// held in `slot` instead of constructing a fresh one, reusing its
    /// word/owner/registry buffers. An empty `slot` (or one holding a
    /// module built against a different machine or layout) is filled
    /// with a fresh module; a warm `slot` whose previous schedule
    /// already sized the buffers for this II performs **no heap
    /// allocation** when the II expansion is cached. Behavior of the
    /// returned module is byte-identical to [`module`](Self::module),
    /// counters included.
    ///
    /// # Panics
    ///
    /// Panics if `ii == 0`.
    pub fn module_reusing<'a>(
        &mut self,
        ii: u32,
        slot: &'a mut Option<ModuloBitvecModule>,
    ) -> &'a mut ModuloBitvecModule {
        assert!(ii > 0, "initiation interval must be positive");
        let (masks, fits) = self.parts(ii);
        match slot {
            Some(module)
                if Arc::ptr_eq(&module.usages, &self.usages) && module.layout == self.layout =>
            {
                module.refit(masks, fits);
            }
            _ => {
                *slot = Some(ModuloBitvecModule::from_parts(
                    Arc::clone(&self.usages),
                    masks,
                    fits,
                    self.layout,
                ));
            }
        }
        slot.as_mut().expect("slot was just filled")
    }

    /// The `(masks, fits)` expansion for `ii`, served from cache or
    /// built, memoized, and LRU-accounted.
    fn parts(&mut self, ii: u32) -> (Arc<ModuloMasks>, Arc<[bool]>) {
        self.tick += 1;
        let tick = self.tick;
        if let Some(entry) = self.by_ii.get_mut(&ii) {
            self.hits += 1;
            entry.last_use = tick;
            (Arc::clone(&entry.masks), Arc::clone(&entry.fits))
        } else {
            self.misses += 1;
            let masks = Arc::new(ModuloMasks::new(&self.usages, ii, self.layout.k));
            let fits: Arc<[bool]> = compute_fits(&self.usages, ii).into();
            if let Some(cap) = self.entry_cap {
                while self.by_ii.len() >= cap {
                    self.evict_lru();
                }
            }
            self.by_ii.insert(
                ii,
                CacheEntry {
                    masks: Arc::clone(&masks),
                    fits: Arc::clone(&fits),
                    last_use: tick,
                },
            );
            (masks, fits)
        }
    }

    /// The word layout modules from this cache use.
    pub fn layout(&self) -> WordLayout {
        self.layout
    }

    /// `module` calls served from an already-expanded II.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// `module` calls that had to expand a new II.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Expansions dropped by the LRU entry cap.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Number of distinct initiation intervals cached.
    pub fn num_cached(&self) -> usize {
        self.by_ii.len()
    }

    /// Total `(word, mask)` entries across all cached expansions — the
    /// cache's memory footprint in units of one packed word operation.
    pub fn mask_entries(&self) -> usize {
        self.by_ii.values().map(|e| e.masks.num_entries()).sum()
    }

    /// Exports the cache statistics into `reg` under `prefix`:
    /// `{prefix}.hits` / `{prefix}.misses` / `{prefix}.evictions`
    /// counters plus `{prefix}.cached_iis` / `{prefix}.mask_entries`
    /// gauges.
    pub fn export_to(&self, reg: &mut rmd_obs::MetricRegistry, prefix: &str) {
        reg.inc(&format!("{prefix}.hits"), self.hits);
        reg.inc(&format!("{prefix}.misses"), self.misses);
        reg.inc(&format!("{prefix}.evictions"), self.evictions);
        reg.set_gauge(&format!("{prefix}.cached_iis"), self.by_ii.len() as u64);
        reg.set_gauge(&format!("{prefix}.mask_entries"), self.mask_entries() as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rmd_machine::models::example_machine;

    fn ops() -> (rmd_machine::MachineDescription, OpId, OpId) {
        let m = example_machine();
        let a = m.op_by_name("A").unwrap();
        let b = m.op_by_name("B").unwrap();
        (m, a, b)
    }

    #[test]
    fn modulo_wraps_conflicts() {
        let (m, a, b) = ops();
        let mut q = ModuloDiscreteModule::new(&m, 5);
        q.assign(OpInstance(0), b, 0);
        // F[A][B] = {-1}: A one cycle *before* B conflicts, and in a
        // modulo schedule with II=5 that wraps to slots ≡ 4 (mod 5).
        assert!(!q.check(a, 4));
        assert!(!q.check(a, 9));
        assert!(q.check(a, 2));
        assert!(q.check(a, 6));
    }

    #[test]
    fn self_overlap_rejected_when_ii_too_small() {
        let (m, _, b) = ops();
        // B uses mul-stage in cycles 2..=5; with II=2 cycles 2 and 4
        // collapse to one slot: B can never be scheduled.
        let mut q = ModuloDiscreteModule::new(&m, 2);
        assert!(!q.check(b, 0));
        let mut q = ModuloBitvecModule::new(&m, 2, WordLayout::with_k(64, 2));
        assert!(!q.check(b, 0));
        // II=4 works (cycles 2..=5 hit 4 distinct slots).
        let mut q = ModuloDiscreteModule::new(&m, 4);
        assert!(q.check(b, 0));
    }

    #[test]
    fn discrete_and_bitvec_agree_across_slots() {
        let (m, a, b) = ops();
        for ii in [4u32, 5, 7, 9] {
            for k in [1u32, 2, 4] {
                let mut d = ModuloDiscreteModule::new(&m, ii);
                let mut v = ModuloBitvecModule::new(&m, ii, WordLayout::with_k(64, k));
                if d.check(b, 2) {
                    d.assign(OpInstance(0), b, 2);
                    v.assign(OpInstance(0), b, 2);
                }
                for t in 0..(2 * ii) {
                    assert_eq!(d.check(a, t), v.check(a, t), "ii={ii} k={k} a@{t}");
                    assert_eq!(d.check(b, t), v.check(b, t), "ii={ii} k={k} b@{t}");
                }
            }
        }
    }

    #[test]
    fn modulo_assign_free_evicts_across_wrap() {
        let (m, _, b) = ops();
        let mut q = ModuloDiscreteModule::new(&m, 8);
        q.assign(OpInstance(0), b, 0);
        // B at slot 4: B's table is 8 long, wraps; conflicts with inst0?
        // F[B][B] = {±1..3}: modulo 8, latency 4 ∉ F: fits.
        assert!(q.check(b, 4));
        q.assign(OpInstance(1), b, 4);
        // A third B must evict both.
        let mut e = q.assign_free(OpInstance(2), b, 2);
        e.sort();
        assert_eq!(e, vec![OpInstance(0), OpInstance(1)]);
        assert_eq!(q.num_scheduled(), 1);
    }

    #[test]
    fn bitvec_modulo_transition_and_free() {
        let (m, _, b) = ops();
        let mut q = ModuloBitvecModule::new(&m, 8, WordLayout::with_k(64, 4));
        q.assign_free(OpInstance(0), b, 0);
        assert!(!q.in_update_mode());
        let e = q.assign_free(OpInstance(1), b, 1);
        assert_eq!(e, vec![OpInstance(0)]);
        assert!(q.in_update_mode());
        assert_eq!(q.counters().transitions, 1);
        q.free(OpInstance(1), b, 1);
        assert_eq!(q.num_scheduled(), 0);
        assert!(q.check(b, 0));
    }

    #[test]
    fn cached_modules_behave_like_fresh_ones() {
        let (m, a, b) = ops();
        let mut cache = ModuloMaskCache::new(&m, WordLayout::with_k(64, 2));
        for ii in [4u32, 5, 8, 5, 4] {
            let mut fresh = ModuloBitvecModule::new(&m, ii, WordLayout::with_k(64, 2));
            let mut cached = cache.module(ii);
            let placeable = fresh.check(b, 2);
            assert_eq!(placeable, cached.check(b, 2), "ii={ii} gate");
            if placeable {
                fresh.assign(OpInstance(0), b, 2);
                cached.assign(OpInstance(0), b, 2);
            }
            for t in 0..(2 * ii) {
                assert_eq!(fresh.check(a, t), cached.check(a, t), "ii={ii} a@{t}");
                assert_eq!(fresh.check(b, t), cached.check(b, t), "ii={ii} b@{t}");
            }
            assert_eq!(fresh.counters(), cached.counters(), "ii={ii}");
        }
        // Five requests over three distinct IIs: 3 misses, 2 hits.
        assert_eq!((cache.hits(), cache.misses()), (2, 3));
        assert_eq!(cache.num_cached(), 3);
        assert!(cache.mask_entries() > 0);
    }

    #[test]
    fn cache_modules_are_independent() {
        let (m, _, b) = ops();
        let mut cache = ModuloMaskCache::new(&m, WordLayout::with_k(64, 4));
        let mut q1 = cache.module(8);
        let mut q2 = cache.module(8);
        q1.assign(OpInstance(0), b, 0);
        // q2 shares masks with q1 but not reservation state.
        assert!(!q1.check(b, 1));
        assert!(q2.check(b, 1));
        q2.reset();
        assert!(q2.check(b, 0));
    }

    #[test]
    fn lru_cap_evicts_least_recently_used() {
        let (m, _, _) = ops();
        let mut cache = ModuloMaskCache::with_cap(&m, WordLayout::with_k(64, 2), 2);
        assert_eq!(cache.entry_cap(), Some(2));
        cache.module(4);
        cache.module(5);
        cache.module(4); // refresh 4 → LRU is now 5
        cache.module(8); // evicts 5
        assert_eq!(cache.evictions(), 1);
        assert_eq!(cache.num_cached(), 2);
        cache.module(4); // still cached: a hit, not a re-expansion
        assert_eq!((cache.hits(), cache.misses()), (2, 3));
        cache.module(5); // was evicted: re-expanded
        assert_eq!((cache.hits(), cache.misses()), (2, 4));
        assert_eq!(cache.evictions(), 2);
    }

    #[test]
    fn set_entry_cap_shrinks_immediately() {
        let (m, _, _) = ops();
        let mut cache = ModuloMaskCache::new(&m, WordLayout::with_k(64, 2));
        for ii in [3u32, 4, 5, 6, 7] {
            cache.module(ii);
        }
        assert_eq!(cache.num_cached(), 5);
        cache.set_entry_cap(Some(2));
        assert_eq!(cache.num_cached(), 2);
        assert_eq!(cache.evictions(), 3);
        cache.set_entry_cap(None);
        for ii in [3u32, 4, 5, 6, 7] {
            cache.module(ii);
        }
        assert_eq!(cache.num_cached(), 5);
    }

    #[test]
    #[should_panic(expected = "entry cap must be at least 1")]
    fn zero_entry_cap_rejected() {
        let (m, _, _) = ops();
        ModuloMaskCache::with_cap(&m, WordLayout::with_k(64, 2), 0);
    }

    #[test]
    fn eviction_preserves_module_behavior() {
        // Byte-identity under eviction at the query level: a cache with
        // cap 1 (every alternating request evicts) hands out modules
        // indistinguishable from fresh ones, and live modules survive
        // eviction of the expansion they share.
        let (m, a, b) = ops();
        let mut cache = ModuloMaskCache::with_cap(&m, WordLayout::with_k(64, 2), 1);
        let mut survivor = cache.module(8);
        survivor.assign(OpInstance(0), b, 2);
        for ii in [4u32, 8, 5, 8, 4] {
            let mut fresh = ModuloBitvecModule::new(&m, ii, WordLayout::with_k(64, 2));
            let mut cached = cache.module(ii);
            let placeable = fresh.check(b, 2);
            assert_eq!(placeable, cached.check(b, 2), "ii={ii} gate");
            if placeable {
                fresh.assign(OpInstance(0), b, 2);
                cached.assign(OpInstance(0), b, 2);
            }
            for t in 0..(2 * ii) {
                assert_eq!(fresh.check(a, t), cached.check(a, t), "ii={ii} a@{t}");
                assert_eq!(fresh.check(b, t), cached.check(b, t), "ii={ii} b@{t}");
            }
            assert_eq!(fresh.counters(), cached.counters(), "ii={ii}");
        }
        // Five requests, cap 1, all alternating: every request after the
        // first for a different II is a miss that evicted.
        assert_eq!(cache.num_cached(), 1);
        assert!(cache.evictions() >= 4);
        // The module created before the churn still answers correctly
        // from its own Arc of the (since evicted) expansion.
        let mut fresh = ModuloBitvecModule::new(&m, 8, WordLayout::with_k(64, 2));
        fresh.assign(OpInstance(0), b, 2);
        for t in 0..16 {
            assert_eq!(fresh.check(a, t), survivor.check(a, t), "survivor a@{t}");
        }
        let mut reg = rmd_obs::MetricRegistry::new();
        cache.export_to(&mut reg, "mask_cache");
        assert!(reg.counter("mask_cache.evictions") >= 4);
    }

    #[test]
    fn module_reusing_matches_fresh_modules() {
        let (m, a, b) = ops();
        let mut cache = ModuloMaskCache::new(&m, WordLayout::with_k(64, 2));
        let mut slot = None;
        for ii in [4u32, 5, 8, 5, 4] {
            let mut fresh = ModuloBitvecModule::new(&m, ii, WordLayout::with_k(64, 2));
            let reused = cache.module_reusing(ii, &mut slot);
            let placeable = fresh.check(b, 2);
            assert_eq!(placeable, reused.check(b, 2), "ii={ii} gate");
            if placeable {
                fresh.assign(OpInstance(0), b, 2);
                reused.assign(OpInstance(0), b, 2);
                // Drive the transition/eviction path on both.
                let mut e1 = Vec::new();
                let mut e2 = vec![OpInstance(99)]; // stale content must be cleared
                fresh.assign_free_into(OpInstance(1), b, 3, &mut e1);
                reused.assign_free_into(OpInstance(1), b, 3, &mut e2);
                assert_eq!(e1, e2, "ii={ii} evictions");
            }
            for t in 0..(2 * ii) {
                assert_eq!(fresh.check(a, t), reused.check(a, t), "ii={ii} a@{t}");
                assert_eq!(fresh.check(b, t), reused.check(b, t), "ii={ii} b@{t}");
            }
            assert_eq!(fresh.counters(), reused.counters(), "ii={ii}");
            assert_eq!(fresh.in_update_mode(), reused.in_update_mode(), "ii={ii}");
        }
    }

    #[test]
    fn module_reusing_replaces_foreign_slots() {
        // A slot holding a module built against different compiled
        // parts (another cache) is replaced with a fresh module, never
        // refitted onto mismatched usages.
        let (m, _, b) = ops();
        let mut c1 = ModuloMaskCache::new(&m, WordLayout::with_k(64, 2));
        let mut c2 = ModuloMaskCache::new(&m, WordLayout::with_k(64, 4));
        let mut slot = None;
        c1.module_reusing(8, &mut slot).assign(OpInstance(0), b, 0);
        let q = c2.module_reusing(8, &mut slot);
        assert_eq!(q.num_scheduled(), 0, "foreign module was replaced");
        assert!(q.check(b, 0));
    }

    #[test]
    fn assign_free_into_matches_assign_free() {
        let (m, _, b) = ops();
        let mut q1 = ModuloDiscreteModule::new(&m, 8);
        let mut q2 = ModuloDiscreteModule::new(&m, 8);
        for (inst, cyc) in [(0u32, 0u32), (1, 4), (2, 2)] {
            let e1 = q1.assign_free(OpInstance(inst), b, cyc);
            let mut e2 = vec![OpInstance(99)];
            q2.assign_free_into(OpInstance(inst), b, cyc, &mut e2);
            assert_eq!(e1, e2, "inst={inst} cycle={cyc}");
        }
        assert_eq!(q1.counters(), q2.counters());
        assert_eq!(q1.num_scheduled(), q2.num_scheduled());
    }

    #[test]
    fn free_then_reuse_slot() {
        let (m, a, _) = ops();
        let mut q = ModuloBitvecModule::new(&m, 3, WordLayout::with_k(64, 2));
        q.assign(OpInstance(0), a, 1);
        assert!(!q.check(a, 4)); // same slot mod 3
        q.free(OpInstance(0), a, 1);
        assert!(q.check(a, 4));
    }
}
