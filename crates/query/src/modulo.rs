//! Modulo reservation tables for software pipelining (paper §8).
//!
//! In a modulo schedule with initiation interval II, an operation issued
//! at cycle `t` uses its cycle-`c` resources in *slot* `(t + c) mod II`
//! of a table with II rows — every iteration repeats the same pattern.
//! Both query representations exist in modulo form; the scheduler
//! allocates one per scheduling attempt (II is fixed per attempt).

use crate::compiled::CompiledUsages;
use crate::counters::WorkCounters;
use crate::registry::{OpInstance, Registry};
use crate::traits::ContentionQuery;
use crate::WordLayout;
use rmd_machine::{MachineDescription, OpId};

/// Discrete-representation modulo reservation table.
///
/// # Example
///
/// ```
/// use rmd_machine::models::example_machine;
/// use rmd_query::{ContentionQuery, ModuloDiscreteModule, OpInstance};
///
/// let m = example_machine();
/// let b = m.op_by_name("B").unwrap();
/// // II = 4: B self-conflicts at latencies {1,2,3} mod 4, so a second B
/// // can never be placed in a different slot...
/// let mut q = ModuloDiscreteModule::new(&m, 4);
/// q.assign(OpInstance(0), b, 0);
/// assert!(!q.check(b, 1));
/// assert!(!q.check(b, 7));
/// // ...and II = 8 leaves slots 4..=7 free.
/// let mut q = ModuloDiscreteModule::new(&m, 8);
/// q.assign(OpInstance(0), b, 0);
/// assert!(q.check(b, 4));
/// ```
#[derive(Clone, Debug)]
pub struct ModuloDiscreteModule {
    compiled: CompiledUsages,
    ii: u32,
    /// `owner[slot * num_resources + r]`, `slot ∈ 0..ii`.
    owner: Vec<Option<OpInstance>>,
    /// Per op: placeable at all under this II (no self-overlap of one
    /// resource slot across iterations)? Precomputed at construction.
    fits: Vec<bool>,
    registry: Registry,
    counters: WorkCounters,
}

/// Computes, for every op, whether its table avoids mapping two usages of
/// one resource to the same modulo slot.
fn compute_fits(usages: &CompiledUsages, ii: u32) -> Vec<bool> {
    usages
        .usages
        .iter()
        .map(|us| {
            for (i, &(r, c)) in us.iter().enumerate() {
                for &(r2, c2) in &us[i + 1..] {
                    if r == r2 && (c % ii) == (c2 % ii) {
                        return false;
                    }
                }
            }
            true
        })
        .collect()
}

impl ModuloDiscreteModule {
    /// Creates an empty modulo reservation table with the given
    /// initiation interval.
    ///
    /// # Panics
    ///
    /// Panics if `ii == 0`.
    pub fn new(machine: &MachineDescription, ii: u32) -> Self {
        assert!(ii > 0, "initiation interval must be positive");
        let compiled = CompiledUsages::new(machine);
        let owner = vec![None; ii as usize * compiled.num_resources];
        let fits = compute_fits(&compiled, ii);
        ModuloDiscreteModule {
            compiled,
            ii,
            owner,
            fits,
            registry: Registry::new(),
            counters: WorkCounters::new(),
        }
    }

    /// The initiation interval.
    pub fn ii(&self) -> u32 {
        self.ii
    }

    /// Whether `op` is placeable at all under this II (no two usages of
    /// one resource collapse onto the same modulo slot). Schedulers
    /// should bump II when any operation of the loop does not fit.
    pub fn fits(&self, op: OpId) -> bool {
        self.fits[op.index()]
    }

    #[inline]
    fn slot(&self, r: u32, cycle: u32, c: u32) -> usize {
        let s = (cycle as u64 + c as u64) % self.ii as u64;
        s as usize * self.compiled.num_resources + r as usize
    }

    /// Whether an operation with `count` usages of one resource slot per
    /// iteration can ever fit: used by ResMII-style feasibility checks.
    pub fn num_slots(&self) -> usize {
        self.owner.len()
    }
}

impl ContentionQuery for ModuloDiscreteModule {
    fn check(&mut self, op: OpId, cycle: u32) -> bool {
        self.counters.check.calls += 1;
        // An op whose table is longer than II may self-overlap across
        // iterations (two usages of one resource in cycles c ≡ c' mod II
        // hit the same slot); such ops can never be placed under this II.
        if !self.fits[op.index()] {
            return false;
        }
        for &(r, c) in self.compiled.of(op) {
            self.counters.check.units += 1;
            if self.owner[self.slot(r, cycle, c)].is_some() {
                return false;
            }
        }
        true
    }

    fn assign(&mut self, inst: OpInstance, op: OpId, cycle: u32) {
        self.counters.assign.calls += 1;
        for &(r, c) in self.compiled.of(op) {
            self.counters.assign.units += 1;
            let s = self.slot(r, cycle, c);
            debug_assert!(self.owner[s].is_none(), "assign over a reservation");
            self.owner[s] = Some(inst);
        }
        self.registry.insert(inst, op, cycle);
    }

    fn assign_free(&mut self, inst: OpInstance, op: OpId, cycle: u32) -> Vec<OpInstance> {
        self.counters.assign_free.calls += 1;
        let mut evicted = Vec::new();
        for ui in 0..self.compiled.of(op).len() {
            let (r, c) = self.compiled.of(op)[ui];
            self.counters.assign_free.units += 1;
            let s = self.slot(r, cycle, c);
            if let Some(holder) = self.owner[s] {
                if holder != inst {
                    let (hop, hcycle) = self
                        .registry
                        .remove(holder)
                        .expect("owner entries track registered instances");
                    for &(hr, hc) in self.compiled.of(hop) {
                        self.counters.assign_free.units += 1;
                        let hs = self.slot(hr, hcycle, hc);
                        self.owner[hs] = None;
                    }
                    evicted.push(holder);
                }
            }
            self.owner[s] = Some(inst);
        }
        self.registry.insert(inst, op, cycle);
        evicted
    }

    fn free(&mut self, inst: OpInstance, op: OpId, cycle: u32) {
        self.counters.free.calls += 1;
        let removed = self.registry.remove(inst);
        debug_assert_eq!(removed, Some((op, cycle)), "free of unscheduled instance");
        for &(r, c) in self.compiled.of(op) {
            self.counters.free.units += 1;
            let s = self.slot(r, cycle, c);
            debug_assert_eq!(self.owner[s], Some(inst), "free of foreign reservation");
            self.owner[s] = None;
        }
    }

    fn counters(&self) -> &WorkCounters {
        &self.counters
    }

    fn reset(&mut self) {
        self.owner.fill(None);
        self.registry.clear();
        self.counters.reset();
    }

    fn num_scheduled(&self) -> usize {
        self.registry.len()
    }
}

/// The compiled word operations of one (op, issue-slot) pair:
/// `(word index, mask)` per touched word.
type WordMasks = Vec<(u32, u64)>;

/// Bitvector-representation modulo reservation table.
///
/// The II slots are packed `k` cycle-bitvectors per word
/// (`ceil(II / k)` words). Because a reservation wraps around the table,
/// the word masks of an operation depend on its issue slot modulo II;
/// they are compiled lazily, once per distinct issue slot.
#[derive(Clone, Debug)]
pub struct ModuloBitvecModule {
    usages: CompiledUsages,
    layout: WordLayout,
    ii: u32,
    words: Vec<u64>,
    /// Lazily compiled masks: `masks[op][cycle mod ii]`.
    masks: Vec<Vec<Option<WordMasks>>>,
    fits: Vec<bool>,
    owner: Option<Vec<Option<OpInstance>>>,
    registry: Registry,
    counters: WorkCounters,
}

impl ModuloBitvecModule {
    /// Creates an empty modulo reservation table.
    ///
    /// # Panics
    ///
    /// Panics if `ii == 0` or a word cannot hold `layout.k`
    /// cycle-bitvectors of this machine.
    pub fn new(machine: &MachineDescription, ii: u32, layout: WordLayout) -> Self {
        assert!(ii > 0, "initiation interval must be positive");
        let usages = CompiledUsages::new(machine);
        let nr = usages.num_resources as u32;
        assert!(
            layout.k >= 1 && layout.k * nr <= 64,
            "k={} cycles of {nr} resources exceed a 64-bit word",
            layout.k
        );
        let nwords = (ii as usize).div_ceil(layout.k as usize);
        let nops = usages.usages.len();
        let fits = compute_fits(&usages, ii);
        ModuloBitvecModule {
            usages,
            layout,
            ii,
            words: vec![0; nwords],
            masks: vec![vec![None; ii as usize]; nops],
            fits,
            owner: None,
            registry: Registry::new(),
            counters: WorkCounters::new(),
        }
    }

    /// The initiation interval.
    pub fn ii(&self) -> u32 {
        self.ii
    }

    /// Whether the module has transitioned to update mode.
    pub fn in_update_mode(&self) -> bool {
        self.owner.is_some()
    }

    /// Whether `op` is placeable at all under this II (see
    /// [`ModuloDiscreteModule::fits`]).
    pub fn fits(&self, op: OpId) -> bool {
        self.fits[op.index()]
    }

    fn mask_for(&mut self, op: OpId, slot: u32) -> &[(u32, u64)] {
        let entry = &mut self.masks[op.index()][slot as usize];
        if entry.is_none() {
            let k = self.layout.k;
            let nr = self.usages.num_resources as u32;
            let mut words: Vec<(u32, u64)> = Vec::new();
            for &(r, c) in self.usages.of(op) {
                let s = ((slot as u64 + c as u64) % self.ii as u64) as u32;
                let w = s / k;
                let bit = (s % k) * nr + r;
                match words.binary_search_by_key(&w, |&(wo, _)| wo) {
                    Ok(i) => words[i].1 |= 1u64 << bit,
                    Err(i) => words.insert(i, (w, 1u64 << bit)),
                }
            }
            *entry = Some(words);
        }
        entry.as_ref().expect("just filled").as_slice()
    }

    fn transition_to_update(&mut self) {
        let nr = self.usages.num_resources;
        let ii = self.ii as u64;
        let mut owner = vec![None; self.ii as usize * nr];
        let mut scanned = 0u64;
        for (inst, op, cycle) in self.registry.iter() {
            for &(r, c) in self.usages.of(op) {
                scanned += 1;
                let s = ((cycle as u64 + c as u64) % ii) as usize * nr + r as usize;
                owner[s] = Some(inst);
            }
        }
        self.counters.assign_free.units += scanned;
        self.counters.transitions += 1;
        self.owner = Some(owner);
    }

    #[inline]
    fn flag_pos(&self, r: u32, cycle: u32, c: u32) -> (usize, u64) {
        let s = ((cycle as u64 + c as u64) % self.ii as u64) as u32;
        let k = self.layout.k;
        let bit = (s % k) * self.usages.num_resources as u32 + r;
        ((s / k) as usize, 1u64 << bit)
    }
}

impl ContentionQuery for ModuloBitvecModule {
    fn check(&mut self, op: OpId, cycle: u32) -> bool {
        self.counters.check.calls += 1;
        if !self.fits[op.index()] {
            return false;
        }
        let slot = cycle % self.ii;
        let n = self.mask_for(op, slot).len();
        for i in 0..n {
            self.counters.check.units += 1;
            let (w, m) = self.masks[op.index()][slot as usize]
                .as_ref()
                .expect("compiled")[i];
            if self.words[w as usize] & m != 0 {
                return false;
            }
        }
        true
    }

    fn assign(&mut self, inst: OpInstance, op: OpId, cycle: u32) {
        self.counters.assign.calls += 1;
        let slot = cycle % self.ii;
        let n = self.mask_for(op, slot).len();
        for i in 0..n {
            self.counters.assign.units += 1;
            let (w, m) = self.masks[op.index()][slot as usize]
                .as_ref()
                .expect("compiled")[i];
            debug_assert_eq!(self.words[w as usize] & m, 0, "assign over a reservation");
            self.words[w as usize] |= m;
        }
        if let Some(owner) = &mut self.owner {
            let nr = self.usages.num_resources;
            for &(r, c) in self.usages.of(op) {
                let s = ((cycle as u64 + c as u64) % self.ii as u64) as usize * nr + r as usize;
                owner[s] = Some(inst);
            }
        }
        self.registry.insert(inst, op, cycle);
    }

    fn assign_free(&mut self, inst: OpInstance, op: OpId, cycle: u32) -> Vec<OpInstance> {
        self.counters.assign_free.calls += 1;
        let slot = cycle % self.ii;

        if self.owner.is_none() {
            let n = self.mask_for(op, slot).len();
            let mut conflict = false;
            for i in 0..n {
                self.counters.assign_free.units += 1;
                let (w, m) = self.masks[op.index()][slot as usize]
                    .as_ref()
                    .expect("compiled")[i];
                if self.words[w as usize] & m != 0 {
                    conflict = true;
                    break;
                }
            }
            if !conflict {
                for i in 0..n {
                    let (w, m) = self.masks[op.index()][slot as usize]
                        .as_ref()
                        .expect("compiled")[i];
                    self.words[w as usize] |= m;
                }
                self.registry.insert(inst, op, cycle);
                return Vec::new();
            }
            self.transition_to_update();
        }

        let nr = self.usages.num_resources;
        let ii = self.ii as u64;
        let mut evicted = Vec::new();
        for ui in 0..self.usages.of(op).len() {
            let (r, c) = self.usages.of(op)[ui];
            self.counters.assign_free.units += 1;
            let s = ((cycle as u64 + c as u64) % ii) as usize * nr + r as usize;
            let holder = self.owner.as_ref().expect("update mode")[s];
            if let Some(holder) = holder {
                if holder != inst {
                    let (hop, hcycle) = self
                        .registry
                        .remove(holder)
                        .expect("owner entries track registered instances");
                    for hj in 0..self.usages.of(hop).len() {
                        let (hr, hc) = self.usages.of(hop)[hj];
                        self.counters.assign_free.units += 1;
                        let hs = ((hcycle as u64 + hc as u64) % ii) as usize * nr + hr as usize;
                        self.owner.as_mut().expect("update mode")[hs] = None;
                        let (w, m) = self.flag_pos(hr, hcycle, hc);
                        self.words[w] &= !m;
                    }
                    evicted.push(holder);
                }
            }
            self.owner.as_mut().expect("update mode")[s] = Some(inst);
            let (w, m) = self.flag_pos(r, cycle, c);
            self.words[w] |= m;
        }
        self.registry.insert(inst, op, cycle);
        evicted
    }

    fn free(&mut self, inst: OpInstance, op: OpId, cycle: u32) {
        self.counters.free.calls += 1;
        let removed = self.registry.remove(inst);
        debug_assert_eq!(removed, Some((op, cycle)), "free of unscheduled instance");
        let slot = cycle % self.ii;
        let n = self.mask_for(op, slot).len();
        for i in 0..n {
            self.counters.free.units += 1;
            let (w, m) = self.masks[op.index()][slot as usize]
                .as_ref()
                .expect("compiled")[i];
            debug_assert_eq!(self.words[w as usize] & m, m, "free of unreserved bits");
            self.words[w as usize] &= !m;
        }
        if let Some(owner) = &mut self.owner {
            let nr = self.usages.num_resources;
            for &(r, c) in self.usages.of(op) {
                let s = ((cycle as u64 + c as u64) % self.ii as u64) as usize * nr + r as usize;
                owner[s] = None;
            }
        }
    }

    fn counters(&self) -> &WorkCounters {
        &self.counters
    }

    fn reset(&mut self) {
        self.words.fill(0);
        self.owner = None;
        self.registry.clear();
        self.counters.reset();
    }

    fn num_scheduled(&self) -> usize {
        self.registry.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rmd_machine::models::example_machine;

    fn ops() -> (rmd_machine::MachineDescription, OpId, OpId) {
        let m = example_machine();
        let a = m.op_by_name("A").unwrap();
        let b = m.op_by_name("B").unwrap();
        (m, a, b)
    }

    #[test]
    fn modulo_wraps_conflicts() {
        let (m, a, b) = ops();
        let mut q = ModuloDiscreteModule::new(&m, 5);
        q.assign(OpInstance(0), b, 0);
        // F[A][B] = {-1}: A one cycle *before* B conflicts, and in a
        // modulo schedule with II=5 that wraps to slots ≡ 4 (mod 5).
        assert!(!q.check(a, 4));
        assert!(!q.check(a, 9));
        assert!(q.check(a, 2));
        assert!(q.check(a, 6));
    }

    #[test]
    fn self_overlap_rejected_when_ii_too_small() {
        let (m, _, b) = ops();
        // B uses mul-stage in cycles 2..=5; with II=2 cycles 2 and 4
        // collapse to one slot: B can never be scheduled.
        let mut q = ModuloDiscreteModule::new(&m, 2);
        assert!(!q.check(b, 0));
        let mut q = ModuloBitvecModule::new(&m, 2, WordLayout::with_k(64, 2));
        assert!(!q.check(b, 0));
        // II=4 works (cycles 2..=5 hit 4 distinct slots).
        let mut q = ModuloDiscreteModule::new(&m, 4);
        assert!(q.check(b, 0));
    }

    #[test]
    fn discrete_and_bitvec_agree_across_slots() {
        let (m, a, b) = ops();
        for ii in [4u32, 5, 7, 9] {
            for k in [1u32, 2, 4] {
                let mut d = ModuloDiscreteModule::new(&m, ii);
                let mut v = ModuloBitvecModule::new(&m, ii, WordLayout::with_k(64, k));
                if d.check(b, 2) {
                    d.assign(OpInstance(0), b, 2);
                    v.assign(OpInstance(0), b, 2);
                }
                for t in 0..(2 * ii) {
                    assert_eq!(d.check(a, t), v.check(a, t), "ii={ii} k={k} a@{t}");
                    assert_eq!(d.check(b, t), v.check(b, t), "ii={ii} k={k} b@{t}");
                }
            }
        }
    }

    #[test]
    fn modulo_assign_free_evicts_across_wrap() {
        let (m, _, b) = ops();
        let mut q = ModuloDiscreteModule::new(&m, 8);
        q.assign(OpInstance(0), b, 0);
        // B at slot 4: B's table is 8 long, wraps; conflicts with inst0?
        // F[B][B] = {±1..3}: modulo 8, latency 4 ∉ F: fits.
        assert!(q.check(b, 4));
        q.assign(OpInstance(1), b, 4);
        // A third B must evict both.
        let mut e = q.assign_free(OpInstance(2), b, 2);
        e.sort();
        assert_eq!(e, vec![OpInstance(0), OpInstance(1)]);
        assert_eq!(q.num_scheduled(), 1);
    }

    #[test]
    fn bitvec_modulo_transition_and_free() {
        let (m, _, b) = ops();
        let mut q = ModuloBitvecModule::new(&m, 8, WordLayout::with_k(64, 4));
        q.assign_free(OpInstance(0), b, 0);
        assert!(!q.in_update_mode());
        let e = q.assign_free(OpInstance(1), b, 1);
        assert_eq!(e, vec![OpInstance(0)]);
        assert!(q.in_update_mode());
        assert_eq!(q.counters().transitions, 1);
        q.free(OpInstance(1), b, 1);
        assert_eq!(q.num_scheduled(), 0);
        assert!(q.check(b, 0));
    }

    #[test]
    fn free_then_reuse_slot() {
        let (m, a, _) = ops();
        let mut q = ModuloBitvecModule::new(&m, 3, WordLayout::with_k(64, 2));
        q.assign(OpInstance(0), a, 1);
        assert!(!q.check(a, 4)); // same slot mod 3
        q.free(OpInstance(0), a, 1);
        assert!(q.check(a, 4));
    }
}
