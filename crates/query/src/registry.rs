//! Scheduled-instance bookkeeping shared by the query modules.

use core::fmt;
use rmd_machine::OpId;
use std::collections::HashMap;

/// Identifies one scheduled *instance* of an operation within a partial
/// schedule. Instance ids are chosen by the scheduler (e.g. the index of
/// the operation in the dependence graph) and must be unique among
/// currently scheduled instances.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct OpInstance(pub u32);

impl OpInstance {
    /// Returns the id as a usable array index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for OpInstance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "inst{}", self.0)
    }
}

impl fmt::Display for OpInstance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "inst{}", self.0)
    }
}

/// Tracks which instances are currently scheduled, with their operation
/// and issue cycle. The bitvector module's optimistic→update transition
/// scans this list to reconstruct owner fields.
#[derive(Clone, Debug, Default)]
pub(crate) struct Registry {
    live: HashMap<OpInstance, (OpId, u32)>,
}

impl Registry {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn insert(&mut self, inst: OpInstance, op: OpId, cycle: u32) {
        let prev = self.live.insert(inst, (op, cycle));
        debug_assert!(prev.is_none(), "instance {inst} scheduled twice");
    }

    pub fn remove(&mut self, inst: OpInstance) -> Option<(OpId, u32)> {
        self.live.remove(&inst)
    }

    pub fn len(&self) -> usize {
        self.live.len()
    }

    pub fn iter(&self) -> impl Iterator<Item = (OpInstance, OpId, u32)> + '_ {
        self.live.iter().map(|(&i, &(op, c))| (i, op, c))
    }

    pub fn clear(&mut self) {
        self.live.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_round_trip() {
        let mut r = Registry::new();
        r.insert(OpInstance(3), OpId(1), 7);
        assert_eq!(r.len(), 1);
        assert_eq!(r.remove(OpInstance(3)), Some((OpId(1), 7)));
        assert_eq!(r.remove(OpInstance(3)), None);
        assert_eq!(r.len(), 0);
    }

    #[test]
    fn instance_display() {
        assert_eq!(OpInstance(4).to_string(), "inst4");
        assert_eq!(format!("{:?}", OpInstance(4)), "inst4");
    }
}
