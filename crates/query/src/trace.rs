//! Recorded query traces and the query-protocol checker.
//!
//! A [`QueryTrace`] is a serialized sequence of the paper's four query
//! functions — `check`, `assign`, `assign&free`, `free` — as issued by a
//! scheduler against one machine description. Two consumers share the
//! format:
//!
//! * `rmd-fault`'s differential oracle records a trace against a module
//!   over the original machine and replays it over modules built from a
//!   mutant, comparing [`Answer`]s step by step.
//! * `rmd-analyze`'s protocol checks run a [`ProtocolChecker`] over a
//!   trace *statically* — no query module involved — to flag misuse:
//!   double-assigns, frees without a matching assign, frees naming a
//!   foreign owner, and modulo-wraparound misfits.
//!
//! The same [`ProtocolChecker`] is embedded (under `debug_assertions`)
//! in [`DiscreteModule`](crate::DiscreteModule) and
//! [`BitvecModule`](crate::BitvecModule), turning each violation into a
//! panic at the offending call instead of a corrupted schedule later.

use crate::registry::OpInstance;
use crate::traits::ContentionQuery;
use core::fmt;
use rmd_machine::{MachineDescription, OpId};
use std::collections::HashMap;

/// One recorded query call.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum QueryEvent {
    /// `check(op, cycle)` — contention probe, no state change.
    Check {
        /// Operation probed.
        op: OpId,
        /// Issue cycle probed.
        cycle: u32,
    },
    /// `assign(inst, op, cycle)` — reserve, caller checked first.
    Assign {
        /// Scheduled instance id.
        inst: OpInstance,
        /// Operation scheduled.
        op: OpId,
        /// Issue cycle.
        cycle: u32,
    },
    /// `assign_free(inst, op, cycle)` — reserve, evicting holders.
    AssignFree {
        /// Scheduled instance id.
        inst: OpInstance,
        /// Operation scheduled.
        op: OpId,
        /// Issue cycle.
        cycle: u32,
    },
    /// `free(inst, op, cycle)` — release a prior reservation.
    Free {
        /// Instance being unscheduled.
        inst: OpInstance,
        /// Operation it was scheduled as.
        op: OpId,
        /// Cycle it was scheduled at.
        cycle: u32,
    },
}

impl QueryEvent {
    /// Applies the event to a query module and captures its [`Answer`].
    /// Both trace recording and trace replay go through this single
    /// function, so the two sides of a differential comparison see
    /// identical semantics (eviction sets are sorted before capture).
    pub fn apply<Q: ContentionQuery>(&self, q: &mut Q) -> Answer {
        let response = match *self {
            QueryEvent::Check { op, cycle } => Response::Admitted(q.check(op, cycle)),
            QueryEvent::Assign { inst, op, cycle } => {
                q.assign(inst, op, cycle);
                Response::Done
            }
            QueryEvent::AssignFree { inst, op, cycle } => {
                let mut evicted = q.assign_free(inst, op, cycle);
                evicted.sort_unstable();
                Response::Evicted(evicted)
            }
            QueryEvent::Free { inst, op, cycle } => {
                q.free(inst, op, cycle);
                Response::Done
            }
        };
        Answer {
            response,
            scheduled: q.num_scheduled(),
        }
    }
}

impl fmt::Display for QueryEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            QueryEvent::Check { op, cycle } => write!(f, "check({op}, {cycle})"),
            QueryEvent::Assign { inst, op, cycle } => {
                write!(f, "assign({inst}, {op}, {cycle})")
            }
            QueryEvent::AssignFree { inst, op, cycle } => {
                write!(f, "assign_free({inst}, {op}, {cycle})")
            }
            QueryEvent::Free { inst, op, cycle } => {
                write!(f, "free({inst}, {op}, {cycle})")
            }
        }
    }
}

/// What one event returned, plus the scheduled count afterwards — the
/// full observable state the differential oracle compares.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Answer {
    /// The call's own result.
    pub response: Response,
    /// `num_scheduled()` right after the call.
    pub scheduled: usize,
}

/// The result of a single query call.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Response {
    /// A `check` verdict.
    Admitted(bool),
    /// The (sorted) instances an `assign_free` evicted.
    Evicted(Vec<OpInstance>),
    /// `assign`/`free` return nothing.
    Done,
}

impl fmt::Display for Answer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.response {
            Response::Admitted(b) => write!(f, "{b}")?,
            Response::Evicted(e) => write!(f, "evicted {e:?}")?,
            Response::Done => write!(f, "ok")?,
        }
        write!(f, " ({} scheduled)", self.scheduled)
    }
}

/// A recorded sequence of query calls against one machine.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct QueryTrace {
    /// Name of the machine the trace was recorded against.
    pub machine: String,
    /// Initiation interval, when the trace drove a modulo module.
    pub ii: Option<u32>,
    /// The calls, in issue order.
    pub events: Vec<QueryEvent>,
}

impl QueryTrace {
    /// An empty linear-schedule trace.
    pub fn new(machine: impl Into<String>) -> Self {
        QueryTrace {
            machine: machine.into(),
            ii: None,
            events: Vec::new(),
        }
    }

    /// An empty modulo-schedule trace at initiation interval `ii`.
    pub fn modulo(machine: impl Into<String>, ii: u32) -> Self {
        QueryTrace {
            machine: machine.into(),
            ii: Some(ii),
            events: Vec::new(),
        }
    }

    /// Appends one event.
    pub fn push(&mut self, event: QueryEvent) {
        self.events.push(event);
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when no events were recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Replays the whole trace over `q`, returning one [`Answer`] per
    /// event.
    pub fn replay<Q: ContentionQuery>(&self, q: &mut Q) -> Vec<Answer> {
        self.events.iter().map(|e| e.apply(q)).collect()
    }

    /// Statically checks the trace for query-protocol misuse against
    /// `machine`, honoring the trace's `ii` for modulo semantics.
    /// Returns `(event index, violation)` pairs in trace order.
    pub fn check_protocol(&self, machine: &MachineDescription) -> Vec<(usize, ProtocolViolation)> {
        let mut checker = match self.ii {
            Some(ii) => ProtocolChecker::with_ii(machine, ii),
            None => ProtocolChecker::new(machine),
        };
        let mut found = Vec::new();
        for (i, e) in self.events.iter().enumerate() {
            if let Err(v) = checker.observe(e) {
                found.push((i, v));
            }
        }
        found
    }
}

/// A query-protocol violation detected by [`ProtocolChecker`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ProtocolViolation {
    /// An instance was assigned while already scheduled.
    DoubleAssign {
        /// The reused instance id.
        inst: OpInstance,
        /// What it is currently scheduled as.
        prev_op: OpId,
        /// The cycle it is currently scheduled at.
        prev_cycle: u32,
    },
    /// A plain `assign` targeted a slot another instance holds —
    /// `assign` requires a prior successful `check`; only `assign_free`
    /// may displace.
    AssignOverlap {
        /// The instance being assigned.
        inst: OpInstance,
        /// The instance already holding the slot.
        holder: OpInstance,
        /// Resource of the contended slot.
        resource: u32,
        /// Schedule cycle (mod `ii` for modulo traces) of the slot.
        cycle: u32,
    },
    /// A `free` named an instance that is not scheduled.
    FreeWithoutAssign {
        /// The unscheduled instance.
        inst: OpInstance,
    },
    /// A `free` named a live instance but disagreed with its registered
    /// operation or cycle — it would release a foreign owner's slots.
    ForeignFree {
        /// The freed instance.
        inst: OpInstance,
        /// What the caller claimed it was scheduled as.
        claimed_op: OpId,
        /// The cycle the caller claimed.
        claimed_cycle: u32,
        /// What it is actually scheduled as.
        actual_op: OpId,
        /// The cycle it is actually scheduled at.
        actual_cycle: u32,
    },
    /// Under a modulo schedule, the operation's reservation table wraps
    /// onto itself: two usages of one resource fall in the same slot mod
    /// `ii`, so no placement can ever succeed
    /// ([`ModuloDiscreteModule::fits`](crate::ModuloDiscreteModule::fits)
    /// is the precondition the caller skipped).
    ModuloMisfit {
        /// The operation that cannot be modulo-scheduled.
        op: OpId,
        /// The initiation interval in force.
        ii: u32,
    },
}

impl fmt::Display for ProtocolViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            ProtocolViolation::DoubleAssign {
                inst,
                prev_op,
                prev_cycle,
            } => write!(
                f,
                "{inst} assigned while already scheduled as {prev_op} @ {prev_cycle}"
            ),
            ProtocolViolation::AssignOverlap {
                inst,
                holder,
                resource,
                cycle,
            } => write!(
                f,
                "assign of {inst} overlaps the reservation {holder} holds at \
                 (resource {resource}, cycle {cycle}) — check first or use assign_free"
            ),
            ProtocolViolation::FreeWithoutAssign { inst } => {
                write!(f, "free of {inst}, which is not scheduled")
            }
            ProtocolViolation::ForeignFree {
                inst,
                claimed_op,
                claimed_cycle,
                actual_op,
                actual_cycle,
            } => write!(
                f,
                "free of {inst} as {claimed_op} @ {claimed_cycle}, but it is \
                 scheduled as {actual_op} @ {actual_cycle}"
            ),
            ProtocolViolation::ModuloMisfit { op, ii } => write!(
                f,
                "{op} cannot be modulo-scheduled at ii {ii}: usages of one \
                 resource collide mod ii (fits() is false)"
            ),
        }
    }
}

/// Stateful validator of the `check`/`assign`/`assign_free`/`free`
/// protocol over one machine description.
///
/// Feed it every call (as a [`QueryEvent`]) in order; each call returns
/// the violation it constitutes, if any. The checker keeps its own
/// shadow owner table, so it never touches — and cannot be confused by —
/// the module under observation. On a violation it still applies the
/// event's nominal effect (best effort), which keeps later reports from
/// cascading off one early mistake.
#[derive(Clone, Debug)]
pub struct ProtocolChecker {
    /// Per-op `(resource, cycle)` usages.
    usages: Vec<Vec<(u32, u32)>>,
    ii: Option<u32>,
    /// Per-op: can it be placed at all under `ii`? Always true when
    /// linear.
    fits: Vec<bool>,
    live: HashMap<OpInstance, (OpId, u32)>,
    owner: HashMap<(u32, u32), OpInstance>,
}

impl ProtocolChecker {
    /// A checker for a linear (non-modulo) schedule over `machine`.
    pub fn new(machine: &MachineDescription) -> Self {
        Self::build(machine, None)
    }

    /// A checker for a modulo schedule at initiation interval `ii`.
    ///
    /// # Panics
    ///
    /// Panics if `ii` is zero.
    pub fn with_ii(machine: &MachineDescription, ii: u32) -> Self {
        assert!(ii > 0, "initiation interval must be positive");
        Self::build(machine, Some(ii))
    }

    fn build(machine: &MachineDescription, ii: Option<u32>) -> Self {
        let usages: Vec<Vec<(u32, u32)>> = machine
            .operations()
            .iter()
            .map(|op| {
                op.table()
                    .usages()
                    .iter()
                    .map(|u| (u.resource.0, u.cycle))
                    .collect()
            })
            .collect();
        let fits = usages
            .iter()
            .map(|us| match ii {
                None => true,
                Some(ii) => {
                    let mut slots: Vec<(u32, u32)> =
                        us.iter().map(|&(r, c)| (r, c % ii)).collect();
                    slots.sort_unstable();
                    slots.windows(2).all(|w| w[0] != w[1])
                }
            })
            .collect();
        ProtocolChecker {
            usages,
            ii,
            fits,
            live: HashMap::new(),
            owner: HashMap::new(),
        }
    }

    #[inline]
    fn slot(&self, cycle: u32) -> u32 {
        match self.ii {
            Some(ii) => cycle % ii,
            None => cycle,
        }
    }

    fn fit_violation(&self, op: OpId) -> Option<ProtocolViolation> {
        match self.ii {
            Some(ii) if !self.fits[op.index()] => {
                Some(ProtocolViolation::ModuloMisfit { op, ii })
            }
            _ => None,
        }
    }

    fn clear_reservation(&mut self, op: OpId, cycle: u32) {
        for i in 0..self.usages[op.index()].len() {
            let (r, c) = self.usages[op.index()][i];
            let s = (r, self.slot(cycle + c));
            self.owner.remove(&s);
        }
    }

    /// Observes one call. `Ok(())` when the call respects the protocol;
    /// otherwise the (first) violation it constitutes. State is updated
    /// either way.
    pub fn observe(&mut self, event: &QueryEvent) -> Result<(), ProtocolViolation> {
        let mut violation = None;
        match *event {
            QueryEvent::Check { op, .. } => {
                violation = self.fit_violation(op);
            }
            QueryEvent::Assign { inst, op, cycle } => {
                violation = self.fit_violation(op);
                if let Some(&(prev_op, prev_cycle)) = self.live.get(&inst) {
                    violation.get_or_insert(ProtocolViolation::DoubleAssign {
                        inst,
                        prev_op,
                        prev_cycle,
                    });
                    self.clear_reservation(prev_op, prev_cycle);
                }
                for i in 0..self.usages[op.index()].len() {
                    let (r, c) = self.usages[op.index()][i];
                    let s = (r, self.slot(cycle + c));
                    if let Some(&holder) = self.owner.get(&s) {
                        if holder != inst {
                            violation.get_or_insert(ProtocolViolation::AssignOverlap {
                                inst,
                                holder,
                                resource: s.0,
                                cycle: s.1,
                            });
                        }
                    }
                    self.owner.insert(s, inst);
                }
                self.live.insert(inst, (op, cycle));
            }
            QueryEvent::AssignFree { inst, op, cycle } => {
                violation = self.fit_violation(op);
                if let Some(&(prev_op, prev_cycle)) = self.live.get(&inst) {
                    violation.get_or_insert(ProtocolViolation::DoubleAssign {
                        inst,
                        prev_op,
                        prev_cycle,
                    });
                    self.clear_reservation(prev_op, prev_cycle);
                }
                // Evicting holders is this call's contract, not misuse.
                for i in 0..self.usages[op.index()].len() {
                    let (r, c) = self.usages[op.index()][i];
                    let s = (r, self.slot(cycle + c));
                    if let Some(&holder) = self.owner.get(&s) {
                        if holder != inst {
                            if let Some(&(hop, hcycle)) = self.live.get(&holder) {
                                self.clear_reservation(hop, hcycle);
                            }
                            self.live.remove(&holder);
                        }
                    }
                }
                for i in 0..self.usages[op.index()].len() {
                    let (r, c) = self.usages[op.index()][i];
                    let s = (r, self.slot(cycle + c));
                    self.owner.insert(s, inst);
                }
                self.live.insert(inst, (op, cycle));
            }
            QueryEvent::Free { inst, op, cycle } => match self.live.remove(&inst) {
                None => {
                    violation = Some(ProtocolViolation::FreeWithoutAssign { inst });
                }
                Some((actual_op, actual_cycle)) => {
                    self.clear_reservation(actual_op, actual_cycle);
                    if (actual_op, actual_cycle) != (op, cycle) {
                        violation = Some(ProtocolViolation::ForeignFree {
                            inst,
                            claimed_op: op,
                            claimed_cycle: cycle,
                            actual_op,
                            actual_cycle,
                        });
                    }
                }
            },
        }
        violation.map_or(Ok(()), Err)
    }

    /// Forgets all scheduled state (mirrors a module `reset`).
    pub fn reset(&mut self) {
        self.live.clear();
        self.owner.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::discrete::DiscreteModule;
    use rmd_machine::models::example_machine;

    fn ops() -> (MachineDescription, OpId, OpId) {
        let m = example_machine();
        let a = m.op_by_name("A").unwrap();
        let b = m.op_by_name("B").unwrap();
        (m, a, b)
    }

    #[test]
    fn clean_trace_has_no_violations() {
        let (m, a, b) = ops();
        let mut t = QueryTrace::new(m.name());
        t.push(QueryEvent::Check { op: b, cycle: 0 });
        t.push(QueryEvent::Assign {
            inst: OpInstance(0),
            op: b,
            cycle: 0,
        });
        t.push(QueryEvent::AssignFree {
            inst: OpInstance(1),
            op: b,
            cycle: 1,
        });
        t.push(QueryEvent::Assign {
            inst: OpInstance(2),
            op: a,
            cycle: 10,
        });
        t.push(QueryEvent::Free {
            inst: OpInstance(1),
            op: b,
            cycle: 1,
        });
        assert_eq!(t.check_protocol(&m), vec![]);
    }

    #[test]
    fn double_assign_is_flagged() {
        let (m, _, b) = ops();
        let mut t = QueryTrace::new(m.name());
        t.push(QueryEvent::Assign {
            inst: OpInstance(0),
            op: b,
            cycle: 0,
        });
        t.push(QueryEvent::Assign {
            inst: OpInstance(0),
            op: b,
            cycle: 8,
        });
        let found = t.check_protocol(&m);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].0, 1);
        assert!(matches!(
            found[0].1,
            ProtocolViolation::DoubleAssign {
                inst: OpInstance(0),
                ..
            }
        ));
    }

    #[test]
    fn assign_into_occupied_slot_is_flagged() {
        let (m, _, b) = ops();
        let mut t = QueryTrace::new(m.name());
        t.push(QueryEvent::Assign {
            inst: OpInstance(0),
            op: b,
            cycle: 0,
        });
        // B@1 collides with B@0 (1 ∈ F[B][B]) — a plain assign here is
        // the "double-assign of an occupied slot" misuse.
        t.push(QueryEvent::Assign {
            inst: OpInstance(1),
            op: b,
            cycle: 1,
        });
        let found = t.check_protocol(&m);
        assert_eq!(found.len(), 1);
        assert!(matches!(
            found[0].1,
            ProtocolViolation::AssignOverlap {
                holder: OpInstance(0),
                ..
            }
        ));
    }

    #[test]
    fn free_without_assign_is_flagged() {
        let (m, _, b) = ops();
        let mut t = QueryTrace::new(m.name());
        t.push(QueryEvent::Free {
            inst: OpInstance(5),
            op: b,
            cycle: 0,
        });
        let found = t.check_protocol(&m);
        assert!(matches!(
            found[0].1,
            ProtocolViolation::FreeWithoutAssign {
                inst: OpInstance(5)
            }
        ));
    }

    #[test]
    fn foreign_free_is_flagged() {
        let (m, a, b) = ops();
        let mut t = QueryTrace::new(m.name());
        t.push(QueryEvent::Assign {
            inst: OpInstance(0),
            op: b,
            cycle: 0,
        });
        t.push(QueryEvent::Free {
            inst: OpInstance(0),
            op: a,
            cycle: 3,
        });
        let found = t.check_protocol(&m);
        assert_eq!(found.len(), 1);
        assert!(matches!(found[0].1, ProtocolViolation::ForeignFree { .. }));
    }

    #[test]
    fn modulo_misfit_is_flagged() {
        // B uses each stage across cycles 0..=7; at ii 4 its issue/stage
        // usages wrap onto themselves.
        let (m, _, b) = ops();
        let mut t = QueryTrace::modulo(m.name(), 2);
        t.push(QueryEvent::Check { op: b, cycle: 0 });
        let found = t.check_protocol(&m);
        assert!(matches!(
            found[0].1,
            ProtocolViolation::ModuloMisfit { ii: 2, .. }
        ));
    }

    #[test]
    fn violation_reports_do_not_cascade() {
        // One double-assign must not make every later event look wrong.
        let (m, a, b) = ops();
        let mut t = QueryTrace::new(m.name());
        t.push(QueryEvent::Assign {
            inst: OpInstance(0),
            op: b,
            cycle: 0,
        });
        t.push(QueryEvent::Assign {
            inst: OpInstance(0),
            op: b,
            cycle: 20,
        });
        t.push(QueryEvent::Assign {
            inst: OpInstance(1),
            op: a,
            cycle: 40,
        });
        t.push(QueryEvent::Free {
            inst: OpInstance(0),
            op: b,
            cycle: 20,
        });
        t.push(QueryEvent::Free {
            inst: OpInstance(1),
            op: a,
            cycle: 40,
        });
        let found = t.check_protocol(&m);
        assert_eq!(found.len(), 1, "{found:?}");
        assert_eq!(found[0].0, 1);
    }

    #[test]
    fn replay_answers_match_direct_calls() {
        let (m, _, b) = ops();
        let mut t = QueryTrace::new(m.name());
        t.push(QueryEvent::Check { op: b, cycle: 0 });
        t.push(QueryEvent::Assign {
            inst: OpInstance(0),
            op: b,
            cycle: 0,
        });
        t.push(QueryEvent::Check { op: b, cycle: 1 });
        t.push(QueryEvent::AssignFree {
            inst: OpInstance(1),
            op: b,
            cycle: 2,
        });
        let answers = t.replay(&mut DiscreteModule::new(&m));
        assert_eq!(answers[0].response, Response::Admitted(true));
        assert_eq!(answers[2].response, Response::Admitted(false));
        assert_eq!(
            answers[3].response,
            Response::Evicted(vec![OpInstance(0)])
        );
        assert_eq!(answers[3].scheduled, 1);
    }
}
