//! The common interface of all contention query modules.

use crate::counters::{QueryFn, WorkCounters};
use crate::registry::OpInstance;
use rmd_machine::OpId;

/// The query interface of paper §7: `check`, `assign`, `assign&free`,
/// and `free`, over either a linear schedule or a modulo reservation
/// table.
///
/// All cycles are nonnegative; modulo modules interpret them mod II.
/// `assign` and `assign&free` are mutually exclusive within one partial
/// schedule (the latter relies on owner fields the former does not
/// maintain in the bitvector representation) — mirroring the paper's
/// note; in this implementation `assign` is safe to mix as long as
/// `assign_free` is never asked to evict an `assign`ed instance that was
/// never registered. The provided modules register every instance, so
/// mixing works and the restriction is purely a performance-model one.
pub trait ContentionQuery {
    /// Can `op` issue in `cycle` without resource contention?
    fn check(&mut self, op: OpId, cycle: u32) -> bool;

    /// Reserves the resources of `op` issued at `cycle` for `inst`.
    ///
    /// The caller is expected to have `check`ed first; reserving over an
    /// existing reservation is a logic error that debug builds catch.
    fn assign(&mut self, inst: OpInstance, op: OpId, cycle: u32);

    /// Reserves the resources of `op` issued at `cycle` for `inst`,
    /// first unscheduling every instance that holds any of them. Returns
    /// the evicted instances (possibly empty).
    fn assign_free(&mut self, inst: OpInstance, op: OpId, cycle: u32) -> Vec<OpInstance>;

    /// [`assign_free`](Self::assign_free) writing the evicted instances
    /// into a caller-owned buffer (cleared first) instead of returning a
    /// fresh `Vec` — the allocation-free form schedulers with reusable
    /// scratch use. The provided implementation delegates to
    /// [`assign_free`](Self::assign_free); the modulo modules override
    /// it to write eviction victims directly into `evicted`, so a
    /// steady-state scheduler allocates nothing here. Semantics and
    /// work accounting are identical to `assign_free`.
    fn assign_free_into(
        &mut self,
        inst: OpInstance,
        op: OpId,
        cycle: u32,
        evicted: &mut Vec<OpInstance>,
    ) {
        evicted.clear();
        evicted.extend(self.assign_free(inst, op, cycle));
    }

    /// Releases the resources of `inst` (which must be `op` at `cycle`).
    fn free(&mut self, inst: OpInstance, op: OpId, cycle: u32);

    /// The accumulated work counters.
    fn counters(&self) -> &WorkCounters;

    /// The accumulated work counters, mutably.
    ///
    /// Required so the provided [`check_window`](Self::check_window)
    /// and [`first_free_in`](Self::first_free_in) implementations can
    /// meter themselves; schedulers should treat the counters as
    /// read-only and use [`counters`](Self::counters).
    #[doc(hidden)]
    fn counters_mut(&mut self) -> &mut WorkCounters;

    /// Clears the partial schedule and the counters.
    fn reset(&mut self);

    /// Number of currently scheduled instances.
    fn num_scheduled(&self) -> usize;

    /// Finds the first contention-free cycle for `op` in
    /// `[from, from + window)`, issuing one `check` per probed cycle —
    /// the slot-search idiom of every scheduler in this workspace.
    fn find_first_free(&mut self, op: OpId, from: u32, window: u32) -> Option<u32> {
        (from..from.saturating_add(window)).find(|&t| self.check(op, t))
    }

    /// Availability bitmask for `op` over the window
    /// `[start, start + len)`: bit `i` is set iff
    /// `check(op, start + i)` would return `true`. `len` is clamped to
    /// 64; cycles past `u32::MAX` read as busy.
    ///
    /// Work accounting: the scalar-equivalent cost — one `check` call
    /// per probed cycle, with the same early-exit unit counts the
    /// scalar loop would have recorded — is charged to the `check`
    /// counter, and one `check_window` call is recorded whose units
    /// count the distinct backend word loads the batched scan actually
    /// performed. The provided implementation literally loops over
    /// [`check`](Self::check) (so its loads equal the scalar units);
    /// backends override it with a word-parallel scan that answers the
    /// same question from fewer loads.
    fn check_window(&mut self, op: OpId, start: u32, len: u32) -> u64 {
        let len = len.min(64);
        let before = self.counters().check.units;
        let mut mask = 0u64;
        for i in 0..len {
            let Some(cycle) = start.checked_add(i) else { break };
            if self.check(op, cycle) {
                mask |= 1u64 << i;
            }
        }
        let loads = self.counters().check.units - before;
        self.counters_mut().record(QueryFn::CheckWindow, loads);
        mask
    }

    /// First contention-free cycle for `op` in `[start, start + len)`,
    /// probing in ascending order and stopping at the first free cycle
    /// (the IMS slot-search idiom). Windows longer than 64 cycles are
    /// processed in 64-cycle chunks; cycles past `u32::MAX` read as
    /// busy.
    ///
    /// Work accounting matches the scalar loop exactly: only the
    /// probed prefix is charged to `check` (same calls, same units),
    /// plus one `check_window` call per chunk actually scanned (units
    /// = backend word loads for that prefix).
    fn first_free_in(&mut self, op: OpId, start: u32, len: u32) -> Option<u32> {
        let end = u64::from(start) + u64::from(len);
        let mut cursor = u64::from(start);
        while cursor < end && cursor <= u64::from(u32::MAX) {
            let chunk = (end - cursor).min(64) as u32;
            let chunk_start = cursor as u32;
            let before = self.counters().check.units;
            let mut found = None;
            for i in 0..chunk {
                let Some(cycle) = chunk_start.checked_add(i) else {
                    break;
                };
                if self.check(op, cycle) {
                    found = Some(cycle);
                    break;
                }
            }
            let loads = self.counters().check.units - before;
            self.counters_mut().record(QueryFn::CheckWindow, loads);
            if found.is_some() {
                return found;
            }
            cursor += u64::from(chunk);
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::discrete::DiscreteModule;
    use rmd_machine::models::example_machine;

    #[test]
    fn find_first_free_scans_the_window() {
        let m = example_machine();
        let b = m.op_by_name("B").unwrap();
        let mut q = DiscreteModule::new(&m);
        q.assign(OpInstance(0), b, 0);
        // 1..=3 conflict (F[B][B]); 4 is the first free cycle.
        assert_eq!(q.find_first_free(b, 1, 10), Some(4));
        assert_eq!(q.find_first_free(b, 1, 3), None);
        assert_eq!(q.counters().check.calls, 3 + 4);
    }

    /// Delegates the required methods only, so the provided
    /// `check_window` / `first_free_in` bodies are the ones under test
    /// even when the inner backend overrides them.
    struct DefaultsOnly(DiscreteModule);

    impl ContentionQuery for DefaultsOnly {
        fn check(&mut self, op: OpId, cycle: u32) -> bool {
            self.0.check(op, cycle)
        }
        fn assign(&mut self, inst: OpInstance, op: OpId, cycle: u32) {
            self.0.assign(inst, op, cycle);
        }
        fn assign_free(&mut self, inst: OpInstance, op: OpId, cycle: u32) -> Vec<OpInstance> {
            self.0.assign_free(inst, op, cycle)
        }
        fn free(&mut self, inst: OpInstance, op: OpId, cycle: u32) {
            self.0.free(inst, op, cycle);
        }
        fn counters(&self) -> &WorkCounters {
            self.0.counters()
        }
        fn counters_mut(&mut self) -> &mut WorkCounters {
            self.0.counters_mut()
        }
        fn reset(&mut self) {
            self.0.reset();
        }
        fn num_scheduled(&self) -> usize {
            self.0.num_scheduled()
        }
    }

    #[test]
    fn default_check_window_matches_scalar_checks() {
        let m = example_machine();
        let b = m.op_by_name("B").unwrap();
        let mut q = DefaultsOnly(DiscreteModule::new(&m));
        q.assign(OpInstance(0), b, 0);
        let mask = q.check_window(b, 0, 8);

        let mut scalar = DefaultsOnly(DiscreteModule::new(&m));
        scalar.assign(OpInstance(0), b, 0);
        let mut expect = 0u64;
        for i in 0..8u32 {
            if scalar.check(b, i) {
                expect |= 1u64 << i;
            }
        }
        assert_eq!(mask, expect);
        // The equivalent scalar work landed on `check`; the window call
        // is metered separately with the loads it performed.
        assert_eq!(q.counters().check, scalar.counters().check);
        assert_eq!(q.counters().check_window.calls, 1);
        // The default loops over `check`, so its loads equal the scalar
        // units exactly (overrides may do better, never worse).
        assert_eq!(q.counters().check_window.units, q.counters().check.units);
    }

    #[test]
    fn default_first_free_in_stops_at_first_free_cycle() {
        let m = example_machine();
        let b = m.op_by_name("B").unwrap();
        let mut q = DefaultsOnly(DiscreteModule::new(&m));
        q.assign(OpInstance(0), b, 0);
        // Same first hit and same `check` accounting as the scalar loop
        // in `find_first_free_scans_the_window`.
        assert_eq!(q.first_free_in(b, 1, 10), Some(4));
        assert_eq!(q.first_free_in(b, 1, 3), None);
        assert_eq!(q.counters().check.calls, 3 + 4);
        assert_eq!(q.counters().check_window.calls, 2);
        // Windows longer than 64 cycles are chunked, still finding the
        // first free cycle.
        let mut long = DefaultsOnly(DiscreteModule::new(&m));
        long.assign(OpInstance(0), b, 0);
        assert_eq!(long.first_free_in(b, 1, 200), Some(4));
    }
}
