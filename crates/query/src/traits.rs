//! The common interface of all contention query modules.

use crate::counters::WorkCounters;
use crate::registry::OpInstance;
use rmd_machine::OpId;

/// The query interface of paper §7: `check`, `assign`, `assign&free`,
/// and `free`, over either a linear schedule or a modulo reservation
/// table.
///
/// All cycles are nonnegative; modulo modules interpret them mod II.
/// `assign` and `assign&free` are mutually exclusive within one partial
/// schedule (the latter relies on owner fields the former does not
/// maintain in the bitvector representation) — mirroring the paper's
/// note; in this implementation `assign` is safe to mix as long as
/// `assign_free` is never asked to evict an `assign`ed instance that was
/// never registered. The provided modules register every instance, so
/// mixing works and the restriction is purely a performance-model one.
pub trait ContentionQuery {
    /// Can `op` issue in `cycle` without resource contention?
    fn check(&mut self, op: OpId, cycle: u32) -> bool;

    /// Reserves the resources of `op` issued at `cycle` for `inst`.
    ///
    /// The caller is expected to have `check`ed first; reserving over an
    /// existing reservation is a logic error that debug builds catch.
    fn assign(&mut self, inst: OpInstance, op: OpId, cycle: u32);

    /// Reserves the resources of `op` issued at `cycle` for `inst`,
    /// first unscheduling every instance that holds any of them. Returns
    /// the evicted instances (possibly empty).
    fn assign_free(&mut self, inst: OpInstance, op: OpId, cycle: u32) -> Vec<OpInstance>;

    /// Releases the resources of `inst` (which must be `op` at `cycle`).
    fn free(&mut self, inst: OpInstance, op: OpId, cycle: u32);

    /// The accumulated work counters.
    fn counters(&self) -> &WorkCounters;

    /// Clears the partial schedule and the counters.
    fn reset(&mut self);

    /// Number of currently scheduled instances.
    fn num_scheduled(&self) -> usize;

    /// Finds the first contention-free cycle for `op` in
    /// `[from, from + window)`, issuing one `check` per probed cycle —
    /// the slot-search idiom of every scheduler in this workspace.
    fn find_first_free(&mut self, op: OpId, from: u32, window: u32) -> Option<u32> {
        (from..from.saturating_add(window)).find(|&t| self.check(op, t))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::discrete::DiscreteModule;
    use rmd_machine::models::example_machine;

    #[test]
    fn find_first_free_scans_the_window() {
        let m = example_machine();
        let b = m.op_by_name("B").unwrap();
        let mut q = DiscreteModule::new(&m);
        q.assign(OpInstance(0), b, 0);
        // 1..=3 conflict (F[B][B]); 4 is the first free cycle.
        assert_eq!(q.find_first_free(b, 1, 10), Some(4));
        assert_eq!(q.find_first_free(b, 1, 3), None);
        assert_eq!(q.counters().check.calls, 3 + 4);
    }
}
