//! Shared plumbing for the batched window queries
//! ([`ContentionQuery::check_window`] /
//! [`ContentionQuery::first_free_in`](crate::ContentionQuery::first_free_in)).
//!
//! The word-parallel overrides in the bitvector-backed modules all
//! follow one shape: walk the candidate cycles of the window, consult
//! the same per-(op, alignment) mask lists the scalar `check` uses —
//! reproducing its early-exit unit accounting exactly — but read each
//! reserved-table word at most once per run of consecutive cycles
//! through a one-entry [`LoadCache`]. With `k` cycle-bitvectors packed
//! per word, up to `k` consecutive candidates share their table word,
//! so the batched scan performs strictly fewer loads than `k` scalar
//! checks while answering the identical question.
//!
//! [`ContentionQuery::check_window`]: crate::ContentionQuery::check_window

use crate::counters::{QueryFn, WorkCounters};

/// Result of one window scan over up to 64 candidate cycles.
#[derive(Clone, Copy, Debug, Default)]
pub(crate) struct WindowScan {
    /// Bit `i` set ⇔ cycle `start + i` is contention-free.
    pub mask: u64,
    /// Cycles actually probed (= the `check` calls the scalar loop
    /// would have issued, honoring its stop-at-first-free early exit).
    pub probed: u64,
    /// Mask-list entries handled across the probed cycles (= the
    /// `check` units the scalar loop would have recorded, honoring its
    /// stop-at-first-conflict early exit per cycle).
    pub eq_units: u64,
    /// Distinct reserved-table word loads the batched scan performed.
    pub loads: u64,
    /// First contention-free cycle seen, if any.
    pub first_free: Option<u32>,
}

impl WindowScan {
    /// Books the scan into `counters`: the scalar-equivalent cost goes
    /// to `check` (byte-identity with the per-cycle path) and one
    /// `check_window` call records the actual word loads.
    #[inline]
    pub(crate) fn record(&self, counters: &mut WorkCounters) {
        counters.charge_equivalent_checks(self.probed, self.eq_units);
        counters.record(QueryFn::CheckWindow, self.loads);
    }
}

/// One-entry cache of the most recently read reserved-table word.
///
/// Consecutive cycles of a window land in the same packed word `k`
/// cycles in a row (and the mask lists are sorted by offset), so a
/// single remembered `(index, value)` pair removes the bulk of the
/// redundant loads without any allocation.
#[derive(Clone, Copy, Debug)]
pub(crate) struct LoadCache {
    last: Option<(usize, u64)>,
    /// Words actually loaded (cache misses).
    pub loads: u64,
}

impl LoadCache {
    pub(crate) fn new() -> Self {
        LoadCache {
            last: None,
            loads: 0,
        }
    }

    /// The word at `index`, loading through `load` only when the cache
    /// holds a different word.
    #[inline]
    pub(crate) fn read(&mut self, index: usize, load: impl FnOnce() -> u64) -> u64 {
        match self.last {
            Some((i, w)) if i == index => w,
            _ => {
                let w = load();
                self.loads += 1;
                self.last = Some((index, w));
                w
            }
        }
    }
}

/// Drives `scan(chunk_start, chunk_len)` over `[start, start + len)` in
/// ≤64-cycle chunks (cursor arithmetic in `u64`, so windows touching
/// `u32::MAX` cannot overflow), returning the first free cycle any
/// chunk reports. The closure is expected to stop at its first free
/// cycle and to book its own counters.
pub(crate) fn first_free_chunked(
    start: u32,
    len: u32,
    mut scan: impl FnMut(u32, u32) -> Option<u32>,
) -> Option<u32> {
    let end = u64::from(start) + u64::from(len);
    let mut cursor = u64::from(start);
    while cursor < end && cursor <= u64::from(u32::MAX) {
        let chunk = (end - cursor).min(64) as u32;
        if let Some(t) = scan(cursor as u32, chunk) {
            return Some(t);
        }
        cursor += u64::from(chunk);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_cache_dedupes_consecutive_indices() {
        let mut c = LoadCache::new();
        assert_eq!(c.read(3, || 7), 7);
        assert_eq!(c.read(3, || panic!("must be served from cache")), 7);
        assert_eq!(c.read(4, || 9), 9);
        assert_eq!(c.read(3, || 7), 7); // one-entry: 3 was evicted
        assert_eq!(c.loads, 3);
    }

    #[test]
    fn chunking_covers_the_window_without_overflow() {
        // 130 cycles → chunks of 64, 64, 2.
        let mut calls = Vec::new();
        let r = first_free_chunked(10, 130, |s, l| {
            calls.push((s, l));
            None
        });
        assert_eq!(r, None);
        assert_eq!(calls, vec![(10, 64), (74, 64), (138, 2)]);

        // A window ending past u32::MAX stops at the last real cycle.
        let mut calls = Vec::new();
        let r = first_free_chunked(u32::MAX - 2, 100, |s, l| {
            calls.push((s, l));
            None
        });
        assert_eq!(r, None);
        assert_eq!(calls, vec![(u32::MAX - 2, 64)]);

        // The first chunk reporting a hit short-circuits the rest.
        let r = first_free_chunked(0, 200, |s, _| (s == 64).then_some(70));
        assert_eq!(r, Some(70));
    }
}
