//! Overhead guard for the observability layer: with tracing disabled
//! (the default), the `check` and `check_window`/`first_free_in` hot
//! paths — including the [`MeteredQuery`] wrapper — must perform
//! **zero heap allocations**.
//! Schedulers issue millions of checks per reduction, so any per-call
//! allocation introduced by instrumentation is a real regression, not a
//! style nit. A counting global allocator makes the claim testable.

use rmd_machine::models::{example_machine, mips_r3000};
use rmd_query::{
    BitvecModule, CompiledModule, ContentionQuery, DiscreteModule, MeteredQuery, WordLayout,
};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// Wraps the system allocator and counts every allocation call.
struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// Runs `body` and returns how many allocations it performed.
fn allocations_during(body: impl FnOnce()) -> u64 {
    let before = ALLOCATIONS.load(Ordering::SeqCst);
    body();
    ALLOCATIONS.load(Ordering::SeqCst) - before
}

/// Issues a deterministic mix of `check` calls over every op and a
/// spread of cycles.
fn check_storm<Q: ContentionQuery>(q: &mut MeteredQuery<Q>, num_ops: usize) {
    let mut admitted = 0u64;
    for round in 0..200u32 {
        for op in 0..num_ops {
            if q.check(rmd_machine::OpId(op as u32), round % 37) {
                admitted += 1;
            }
        }
    }
    // Keep the loop observable so the optimizer cannot delete it.
    assert!(admitted > 0, "storm admitted nothing");
}

/// Issues batched window queries — `check_window` and `first_free_in` —
/// over every op and a spread of window starts.
fn window_storm<Q: ContentionQuery>(q: &mut MeteredQuery<Q>, num_ops: usize) {
    let mut occupancy = 0u64;
    for round in 0..200u32 {
        for op in 0..num_ops {
            let id = rmd_machine::OpId(op as u32);
            occupancy += q.check_window(id, round % 37, 64).count_ones() as u64;
            if q.first_free_in(id, round % 29, 32).is_some() {
                occupancy += 1;
            }
        }
    }
    // Keep the loop observable so the optimizer cannot delete it.
    assert!(occupancy > 0, "window storm saw no free cycles");
}

#[test]
fn metered_check_path_does_not_allocate_when_tracing_is_off() {
    assert!(
        !rmd_obs::is_enabled(),
        "tracing must be off for the overhead guard"
    );

    for m in [example_machine(), mips_r3000()] {
        let num_ops = m.num_operations();
        let layout = WordLayout::widest(64, m.num_resources());

        let mut discrete = MeteredQuery::new(DiscreteModule::new(&m));
        let mut bitvec = MeteredQuery::new(BitvecModule::new(&m, layout));
        let mut compiled = MeteredQuery::new(CompiledModule::new(&m, layout));

        // Warm-up pass: let lazy tables and counters reach steady state
        // before measuring.
        check_storm(&mut discrete, num_ops);
        check_storm(&mut bitvec, num_ops);
        check_storm(&mut compiled, num_ops);

        for (name, allocs) in [
            ("discrete", allocations_during(|| check_storm(&mut discrete, num_ops))),
            ("bitvec", allocations_during(|| check_storm(&mut bitvec, num_ops))),
            ("compiled", allocations_during(|| check_storm(&mut compiled, num_ops))),
        ] {
            assert_eq!(
                allocs, 0,
                "{name} check path allocated {allocs} times on `{}` with tracing off",
                m.name()
            );
        }
    }
}

#[test]
fn metered_window_path_does_not_allocate_when_tracing_is_off() {
    assert!(
        !rmd_obs::is_enabled(),
        "tracing must be off for the overhead guard"
    );

    for m in [example_machine(), mips_r3000()] {
        let num_ops = m.num_operations();
        let layout = WordLayout::widest(64, m.num_resources());

        let mut bitvec = MeteredQuery::new(BitvecModule::new(&m, layout));
        let mut compiled = MeteredQuery::new(CompiledModule::new(&m, layout));

        // Warm-up pass: let lazy tables and counters reach steady state
        // before measuring.
        window_storm(&mut bitvec, num_ops);
        window_storm(&mut compiled, num_ops);

        for (name, allocs) in [
            ("bitvec", allocations_during(|| window_storm(&mut bitvec, num_ops))),
            ("compiled", allocations_during(|| window_storm(&mut compiled, num_ops))),
        ] {
            assert_eq!(
                allocs, 0,
                "{name} window path allocated {allocs} times on `{}` with tracing off",
                m.name()
            );
        }
    }
}
