//! The bitvector module's optimistic→update `assign_free` transition.
//!
//! The paper's bitvector representation drops per-slot owner fields to
//! stay word-parallel, and rebuilds them by scanning the
//! scheduled-operation list the first time `assign_free` hits a
//! conflict. These tests pin down that transition: the rebuilt owner
//! fields must match what the discrete module (which maintains owners
//! from the start) reports for the identical trace, the transition must
//! be recorded in `WorkCounters` exactly once, and post-transition
//! evictions must stay bit-for-bit equivalent to the discrete module's.

use rmd_machine::models::{example_machine, mips_r3000};
use rmd_machine::{MachineDescription, OpId};
use rmd_query::{BitvecModule, ContentionQuery, DiscreteModule, OpInstance, WordLayout};

/// Asserts every owner slot in the bitvec module equals the discrete
/// module's over the given horizon.
fn assert_owner_parity(
    m: &MachineDescription,
    bv: &BitvecModule,
    ds: &DiscreteModule,
    horizon: u32,
    context: &str,
) {
    assert!(bv.in_update_mode(), "{context}: expected update mode");
    for cycle in 0..horizon {
        for r in 0..m.num_resources() as u32 {
            assert_eq!(
                bv.owner_of(r, cycle),
                ds.owner_of(r, cycle),
                "{context}: owner of resource {r} at cycle {cycle} diverged"
            );
        }
    }
}

#[test]
fn transition_rebuilds_owner_fields_and_counts_once() {
    let m = example_machine();
    let a = m.op_by_name("A").expect("model has op A");
    let b = m.op_by_name("B").expect("model has op B");
    let mut bv = BitvecModule::new(&m, WordLayout::widest(64, m.num_resources()));
    let mut ds = DiscreteModule::new(&m);

    // Optimistic phase: conflict-free placements stay word-wise, with no
    // owner fields materialised and no transition recorded.
    for (i, (op, cycle)) in [(b, 0u32), (a, 2)].iter().enumerate() {
        let inst = OpInstance(i as u32);
        assert!(bv.assign_free(inst, *op, *cycle).is_empty());
        assert!(ds.assign_free(inst, *op, *cycle).is_empty());
    }
    assert!(!bv.in_update_mode());
    assert_eq!(bv.counters().transitions, 0);
    assert_eq!(bv.owner_of(0, 0), None, "no owner fields before transition");

    // First conflict: B@1 overlaps B@0. The module must scan the
    // scheduled list, rebuild owners, and evict exactly what the
    // discrete module evicts.
    let mut ev_bv = bv.assign_free(OpInstance(2), b, 1);
    let mut ev_ds = ds.assign_free(OpInstance(2), b, 1);
    ev_bv.sort_unstable();
    ev_ds.sort_unstable();
    assert_eq!(ev_bv, ev_ds, "transition-triggering eviction diverged");
    assert!(!ev_bv.is_empty(), "the conflict must evict someone");
    assert_eq!(bv.counters().transitions, 1, "transition recorded once");

    let horizon = 8 + m.max_table_length();
    assert_owner_parity(&m, &bv, &ds, horizon, "after transition");

    // Later conflicts run in update mode: owners stay in sync and the
    // transition counter never moves again.
    for (i, (op, cycle)) in [(b, 3u32), (a, 1), (b, 0), (a, 4)].iter().enumerate() {
        let inst = OpInstance(10 + i as u32);
        let mut ev_bv = bv.assign_free(inst, *op, *cycle);
        let mut ev_ds = ds.assign_free(inst, *op, *cycle);
        ev_bv.sort_unstable();
        ev_ds.sort_unstable();
        assert_eq!(ev_bv, ev_ds, "eviction sets diverged at {op}@{cycle}");
        assert_eq!(bv.num_scheduled(), ds.num_scheduled());
    }
    assert_eq!(bv.counters().transitions, 1, "exactly one transition ever");
    assert_owner_parity(&m, &bv, &ds, horizon, "after post-transition churn");
}

#[test]
fn mixed_assign_before_transition_is_visible_in_rebuilt_owners() {
    // Instances placed with plain `assign` (no owner bookkeeping in
    // optimistic mode) must still be found by the rebuild scan, which
    // walks the registry rather than any incremental state.
    let m = example_machine();
    let b = m.op_by_name("B").expect("model has op B");
    let mut bv = BitvecModule::new(&m, WordLayout::widest(64, m.num_resources()));
    let mut ds = DiscreteModule::new(&m);

    bv.assign(OpInstance(0), b, 0);
    ds.assign(OpInstance(0), b, 0);
    assert!(!bv.in_update_mode());

    let mut ev_bv = bv.assign_free(OpInstance(1), b, 2);
    let mut ev_ds = ds.assign_free(OpInstance(1), b, 2);
    ev_bv.sort_unstable();
    ev_ds.sort_unstable();
    assert_eq!(ev_bv, vec![OpInstance(0)], "assigned instance evicted");
    assert_eq!(ev_bv, ev_ds);
    assert_eq!(bv.counters().transitions, 1);
    assert_owner_parity(&m, &bv, &ds, 8 + m.max_table_length(), "rebuilt from registry");
}

#[test]
fn seeded_walk_keeps_owner_parity_on_mips() {
    // A longer pseudorandom assign_free/free walk on a realistic model,
    // checking owner parity after every step once the transition fires.
    let m = mips_r3000();
    let mut bv = BitvecModule::new(&m, WordLayout::widest(64, m.num_resources()));
    let mut ds = DiscreteModule::new(&m);
    let span = m.max_table_length().max(1);
    let horizon = 3 * span + m.max_table_length();

    // splitmix64, inlined to keep the test dependency-free.
    let mut state: u64 = 0x5EED_0FA1;
    let mut next = move || {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };

    let mut live: Vec<(OpInstance, OpId, u32)> = Vec::new();
    for inst in 0..200u32 {
        let op = OpId((next() % m.num_operations() as u64) as u32);
        let cycle = (next() % u64::from(3 * span)) as u32;
        if next() % 4 == 0 {
            if let Some(i) = (!live.is_empty()).then(|| next() as usize % live.len()) {
                let (li, lop, lcycle) = live.swap_remove(i);
                bv.free(li, lop, lcycle);
                ds.free(li, lop, lcycle);
            }
            continue;
        }
        let inst = OpInstance(inst);
        let mut ev_bv = bv.assign_free(inst, op, cycle);
        let mut ev_ds = ds.assign_free(inst, op, cycle);
        ev_bv.sort_unstable();
        ev_ds.sort_unstable();
        assert_eq!(ev_bv, ev_ds, "eviction sets diverged at {op}@{cycle}");
        live.retain(|(i, _, _)| !ev_bv.contains(i));
        live.push((inst, op, cycle));
        assert_eq!(bv.num_scheduled(), ds.num_scheduled());
        if bv.in_update_mode() {
            assert_owner_parity(&m, &bv, &ds, horizon, "mid-walk");
        }
    }
    assert!(bv.in_update_mode(), "walk never conflicted — weak test");
    assert_eq!(bv.counters().transitions, 1, "exactly one transition");
}
