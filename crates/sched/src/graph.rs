//! Dependence graphs with loop-carried edges.

use core::fmt;
use rmd_machine::OpId;

/// Index of a node (operation instance) in a [`DepGraph`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

impl NodeId {
    /// Returns the id as a usable array index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// The dependence kind — informational; the scheduler only interprets
/// `(delay, distance)`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DepKind {
    /// True (read-after-write) dependence.
    Flow,
    /// Anti (write-after-read) dependence.
    Anti,
    /// Output (write-after-write) dependence.
    Output,
    /// Memory (load/store ordering) dependence.
    Memory,
}

/// A dependence edge: in a modulo schedule with initiation interval II,
/// it imposes `t(to) ≥ t(from) + delay − II · distance`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Edge {
    /// Source node.
    pub from: NodeId,
    /// Sink node.
    pub to: NodeId,
    /// Latency in cycles (may be 0 for anti dependences).
    pub delay: i32,
    /// Iteration distance: 0 for intra-iteration, ≥ 1 for loop-carried.
    pub distance: u32,
    /// Dependence kind.
    pub kind: DepKind,
}

/// A dependence graph over operations of some machine description.
///
/// Node ids are dense and double as the scheduler's
/// [`OpInstance`](rmd_query::OpInstance) ids.
#[derive(Clone, Debug, Default)]
pub struct DepGraph {
    ops: Vec<OpId>,
    edges: Vec<Edge>,
    /// Adjacency arenas. May be longer than `ops` after
    /// [`clear`](Self::clear) — only the first `ops.len()` entries are
    /// live; [`add_node`](Self::add_node) re-clears slots lazily so
    /// their capacity is reused.
    succs: Vec<Vec<u32>>,
    preds: Vec<Vec<u32>>,
}

/// Equality is over the graph's content (nodes and edges); the
/// adjacency arenas are derived data and may hold extra retained
/// capacity after [`DepGraph::clear`].
impl PartialEq for DepGraph {
    fn eq(&self, other: &Self) -> bool {
        self.ops == other.ops && self.edges == other.edges
    }
}

impl DepGraph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Empties the graph while retaining every allocation — the node
    /// and edge vectors and the per-node adjacency arenas keep their
    /// capacity, so a long-running caller (the serve daemon rebuilds a
    /// graph per request) can reuse one `DepGraph` without churning
    /// the allocator. A cleared-and-refilled graph is indistinguishable
    /// from a freshly built one.
    pub fn clear(&mut self) {
        self.ops.clear();
        self.edges.clear();
        // succs/preds entries are re-cleared lazily in add_node.
    }

    /// Adds a node executing operation `op`; returns its id.
    pub fn add_node(&mut self, op: OpId) -> NodeId {
        let i = self.ops.len();
        self.ops.push(op);
        if i < self.succs.len() {
            self.succs[i].clear();
            self.preds[i].clear();
        } else {
            self.succs.push(Vec::new());
            self.preds.push(Vec::new());
        }
        NodeId(i as u32)
    }

    /// Adds a dependence edge.
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is out of range.
    pub fn add_edge(&mut self, from: NodeId, to: NodeId, delay: i32, distance: u32, kind: DepKind) {
        assert!(from.index() < self.ops.len() && to.index() < self.ops.len());
        let idx = self.edges.len() as u32;
        self.edges.push(Edge {
            from,
            to,
            delay,
            distance,
            kind,
        });
        self.succs[from.index()].push(idx);
        self.preds[to.index()].push(idx);
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.ops.len()
    }

    /// Number of edges.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// The operation of node `n`.
    #[inline]
    pub fn op(&self, n: NodeId) -> OpId {
        self.ops[n.index()]
    }

    /// All nodes.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> {
        (0..self.ops.len() as u32).map(NodeId)
    }

    /// All edges.
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// Outgoing edges of `n`.
    pub fn succ_edges(&self, n: NodeId) -> impl Iterator<Item = &Edge> {
        self.succs[n.index()].iter().map(|&i| &self.edges[i as usize])
    }

    /// Incoming edges of `n`.
    pub fn pred_edges(&self, n: NodeId) -> impl Iterator<Item = &Edge> {
        self.preds[n.index()].iter().map(|&i| &self.edges[i as usize])
    }

    /// Whether the graph has any loop-carried edge.
    pub fn has_recurrence(&self) -> bool {
        self.edges.iter().any(|e| e.distance > 0)
    }

    /// Whether the intra-iteration subgraph (distance-0 edges) is acyclic
    /// — a structural sanity check for generated workloads.
    pub fn intra_iteration_acyclic(&self) -> bool {
        // Kahn's algorithm over distance-0 edges.
        let n = self.num_nodes();
        let mut indeg = vec![0usize; n];
        for e in &self.edges {
            if e.distance == 0 {
                indeg[e.to.index()] += 1;
            }
        }
        let mut queue: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
        let mut seen = 0;
        while let Some(v) = queue.pop() {
            seen += 1;
            for &ei in &self.succs[v] {
                let e = &self.edges[ei as usize];
                if e.distance == 0 {
                    indeg[e.to.index()] -= 1;
                    if indeg[e.to.index()] == 0 {
                        queue.push(e.to.index());
                    }
                }
            }
        }
        seen == n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn op(i: u32) -> OpId {
        OpId(i)
    }

    #[test]
    fn build_and_query_adjacency() {
        let mut g = DepGraph::new();
        let a = g.add_node(op(0));
        let b = g.add_node(op(1));
        let c = g.add_node(op(0));
        g.add_edge(a, b, 2, 0, DepKind::Flow);
        g.add_edge(b, c, 1, 0, DepKind::Flow);
        g.add_edge(c, a, 1, 1, DepKind::Flow); // recurrence
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.succ_edges(a).count(), 1);
        assert_eq!(g.pred_edges(a).count(), 1);
        assert_eq!(g.op(c), op(0));
        assert!(g.has_recurrence());
    }

    #[test]
    fn clear_retains_capacity_and_behaves_like_fresh() {
        let mut g = DepGraph::new();
        let a = g.add_node(op(0));
        let b = g.add_node(op(1));
        let c = g.add_node(op(2));
        g.add_edge(a, b, 2, 0, DepKind::Flow);
        g.add_edge(b, c, 1, 0, DepKind::Flow);
        g.clear();
        assert_eq!(g.num_nodes(), 0);
        assert_eq!(g.num_edges(), 0);
        // Refill with a *smaller* graph: stale adjacency beyond the new
        // node count must not leak into queries or equality.
        let a = g.add_node(op(5));
        let b = g.add_node(op(6));
        g.add_edge(b, a, 3, 1, DepKind::Anti);
        let mut fresh = DepGraph::new();
        let fa = fresh.add_node(op(5));
        let fb = fresh.add_node(op(6));
        fresh.add_edge(fb, fa, 3, 1, DepKind::Anti);
        assert_eq!(g, fresh);
        assert_eq!(g.succ_edges(b).count(), 1);
        assert_eq!(g.pred_edges(a).count(), 1);
        assert_eq!(g.succ_edges(a).count(), 0, "stale adjacency cleared");
        assert!(g.has_recurrence());
    }

    #[test]
    fn acyclicity_check_ignores_carried_edges() {
        let mut g = DepGraph::new();
        let a = g.add_node(op(0));
        let b = g.add_node(op(1));
        g.add_edge(a, b, 1, 0, DepKind::Flow);
        g.add_edge(b, a, 1, 1, DepKind::Anti);
        assert!(g.intra_iteration_acyclic());
        g.add_edge(b, a, 0, 0, DepKind::Anti);
        assert!(!g.intra_iteration_acyclic());
    }
}
