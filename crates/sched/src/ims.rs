//! Rau's Iterative Modulo Scheduler (MICRO-27, 1994) — the paper's §8
//! evaluation harness.

use crate::graph::{DepGraph, NodeId};
use crate::mii;
use crate::scratch::SchedScratch;
use core::fmt;
use rmd_machine::alternatives::AltGroups;
use rmd_machine::{MachineDescription, OpId};
use rmd_query::{
    ContentionQuery, ModuloBitvecModule, ModuloDiscreteModule, ModuloMaskCache, OpInstance,
    WordLayout, WorkCounters,
};

/// Which internal representation the contention query module uses.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Representation {
    /// Discrete reserved table with owner fields.
    Discrete,
    /// Bitvector reserved table with the given word layout.
    Bitvec(WordLayout),
}

/// How the scheduler probes the II window for a contention-free slot.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum SlotSearch {
    /// One [`check`](ContentionQuery::check) (or `check_with_alt`) per
    /// candidate cycle — the paper's literal formulation.
    PerCycle,
    /// Batched window queries
    /// ([`first_free_in`](ContentionQuery::first_free_in) /
    /// [`rmd_query::first_free_with_alt`]): byte-identical schedules and
    /// `check` accounting, answered from fewer backend word loads.
    #[default]
    Window,
}

/// Scheduler configuration.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct ImsConfig {
    /// Budget of scheduling decisions per attempt, as a multiple of the
    /// number of operations (the paper uses 6N, and reports 2N for
    /// comparison).
    pub budget_ratio: f64,
    /// Give up if no schedule is found at II ≤ `max_ii`.
    pub max_ii: u32,
    /// Slot-search strategy; [`SlotSearch::Window`] by default.
    pub slot_search: SlotSearch,
}

impl Default for ImsConfig {
    fn default() -> Self {
        ImsConfig {
            budget_ratio: 6.0,
            max_ii: 4096,
            slot_search: SlotSearch::Window,
        }
    }
}

/// Why scheduling failed.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[non_exhaustive]
pub enum ImsError {
    /// Budget exhausted at every II up to the configured maximum.
    NoFeasibleIi {
        /// The maximum II tried.
        max_ii: u32,
    },
}

impl fmt::Display for ImsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ImsError::NoFeasibleIi { max_ii } => {
                write!(f, "no modulo schedule found for any II ≤ {max_ii}")
            }
        }
    }
}

impl std::error::Error for ImsError {}

/// A successful modulo schedule plus the statistics the paper reports
/// (Tables 5 and 6).
#[derive(Clone, Debug)]
pub struct ImsResult {
    /// Issue time per node (within the flat iteration timeline; reduce
    /// mod [`ii`](Self::ii) for the kernel slot).
    pub times: Vec<u32>,
    /// The operation actually placed per node — differs from the graph's
    /// base operation when alternatives were in play
    /// (see [`IterativeModuloScheduler::schedule_with_alternatives`]).
    pub chosen: Vec<OpId>,
    /// Achieved initiation interval.
    pub ii: u32,
    /// The lower bound `max(ResMII, RecMII)`.
    pub mii: u32,
    /// Total scheduling decisions (placements) over all attempts.
    pub decisions: u64,
    /// Scheduling decisions reversed because of resource contentions
    /// (evictions by `assign&free`).
    pub reversed_by_resource: u64,
    /// Scheduling decisions reversed because a dependence constraint was
    /// violated by a forced placement.
    pub reversed_by_dependence: u64,
    /// Number of scheduling attempts (II values tried).
    pub attempts: u32,
    /// `decisions / N` for each attempt, including failed ones — the
    /// paper's Table 5 "sched. decisions / operation" statistic.
    pub per_attempt_ratio: Vec<f64>,
    /// Query-module work counters merged over all attempts.
    pub counters: WorkCounters,
}

impl ImsResult {
    /// `II / MII` — 1.0 means a provably optimal-throughput schedule.
    pub fn ii_ratio(&self) -> f64 {
        f64::from(self.ii) / f64::from(self.mii)
    }
}

/// The Iterative Modulo Scheduler: height-based priority, a slot search
/// over one II window, forced placement with `assign&free` eviction when
/// the window is full, and a bounded budget of decisions per II.
///
/// This is an *unrestricted* scheduler in the paper's sense: operations
/// are processed in priority (not cycle) order, and prior placements are
/// reversed both by resource eviction and by dependence violation.
#[derive(Clone, Copy, Debug, Default)]
pub struct IterativeModuloScheduler {
    config: ImsConfig,
}

impl IterativeModuloScheduler {
    /// Creates a scheduler with the given configuration.
    pub fn new(config: ImsConfig) -> Self {
        IterativeModuloScheduler { config }
    }

    /// Schedules `g` on `machine` (original or reduced — they produce
    /// identical schedules, which is the point of the paper).
    ///
    /// # Errors
    ///
    /// Returns [`ImsError::NoFeasibleIi`] if the budget is exhausted at
    /// every II up to `config.max_ii`.
    pub fn schedule(
        &self,
        g: &DepGraph,
        machine: &MachineDescription,
        repr: Representation,
    ) -> Result<ImsResult, ImsError> {
        self.schedule_with_mii(g, machine, repr, mii::mii(g, machine))
    }

    /// Like [`schedule`](Self::schedule), but starting the II search at a
    /// caller-supplied MII. Used to compare machine descriptions: the
    /// MII computed from the *original* description keeps the search
    /// trajectory — and therefore the resulting schedule — identical when
    /// querying against a *reduced* description (the paper's "precisely
    /// the same schedules were produced regardless of the machine
    /// description" check).
    pub fn schedule_with_mii(
        &self,
        g: &DepGraph,
        machine: &MachineDescription,
        repr: Representation,
        mii: u32,
    ) -> Result<ImsResult, ImsError> {
        let mut scratch = SchedScratch::new();
        self.schedule_inner(g, machine, repr, mii, None, None, &mut scratch)
    }

    /// Like [`schedule_with_mii`](Self::schedule_with_mii), drawing the
    /// per-attempt working buffers from a caller-owned
    /// [`SchedScratch`] so back-to-back schedules reuse allocations.
    /// Results are byte-identical to the scratch-free path.
    ///
    /// # Errors
    ///
    /// Returns [`ImsError::NoFeasibleIi`] as for
    /// [`schedule`](Self::schedule).
    pub fn schedule_with_mii_scratch(
        &self,
        g: &DepGraph,
        machine: &MachineDescription,
        repr: Representation,
        mii: u32,
        scratch: &mut SchedScratch,
    ) -> Result<ImsResult, ImsError> {
        self.schedule_inner(g, machine, repr, mii, None, None, scratch)
    }

    /// Like [`schedule_with_mii`](Self::schedule_with_mii), drawing
    /// bitvector reservation tables from `cache` instead of recompiling
    /// the per-(op, slot) word masks for every II attempted. A suite run
    /// schedules many loops against one machine, and IIs repeat heavily
    /// across loops, so the cache turns per-attempt mask expansion into
    /// a lookup. Schedules, statistics, and work counters are identical
    /// to the uncached path — the cache only changes *when* masks are
    /// built, never what they contain (mask expansion was never charged
    /// to [`WorkCounters`]).
    ///
    /// The cache must have been created for the same machine this call
    /// schedules against; with [`Representation::Discrete`] it is
    /// ignored.
    ///
    /// # Errors
    ///
    /// Returns [`ImsError::NoFeasibleIi`] as for
    /// [`schedule`](Self::schedule).
    ///
    /// # Panics
    ///
    /// Panics if `repr` is a bitvector layout different from the
    /// cache's.
    pub fn schedule_with_mii_cached(
        &self,
        g: &DepGraph,
        machine: &MachineDescription,
        repr: Representation,
        mii: u32,
        cache: &mut ModuloMaskCache,
    ) -> Result<ImsResult, ImsError> {
        let mut scratch = SchedScratch::new();
        self.schedule_with_mii_cached_scratch(g, machine, repr, mii, cache, &mut scratch)
    }

    /// The cached path with caller-owned scratch — the steady-state
    /// entry point of the suite runners and the serve daemon: mask
    /// expansions come from `cache`, working buffers and the
    /// reservation-table module itself from `scratch`. A warm
    /// scratch/cache pair schedules a previously seen loop shape with
    /// zero heap allocations; results are byte-identical to
    /// [`schedule_with_mii`](Self::schedule_with_mii), counters
    /// included.
    ///
    /// # Errors
    ///
    /// Returns [`ImsError::NoFeasibleIi`] as for
    /// [`schedule`](Self::schedule).
    ///
    /// # Panics
    ///
    /// Panics if `repr` is a bitvector layout different from the
    /// cache's.
    pub fn schedule_with_mii_cached_scratch(
        &self,
        g: &DepGraph,
        machine: &MachineDescription,
        repr: Representation,
        mii: u32,
        cache: &mut ModuloMaskCache,
        scratch: &mut SchedScratch,
    ) -> Result<ImsResult, ImsError> {
        if let Representation::Bitvec(layout) = repr {
            assert_eq!(
                layout,
                cache.layout(),
                "mask cache was built for a different word layout"
            );
        }
        self.schedule_inner(g, machine, repr, mii, None, Some(cache), scratch)
    }

    /// Like [`schedule_with_mii`](Self::schedule_with_mii), additionally
    /// resolving each node's operation through its alternatives
    /// (paper §7's `check-with-alt`): the slot search tries the base
    /// operation first and falls through to any contention-free
    /// alternative, so e.g. generic loads spread across the Cydra's two
    /// memory ports automatically. The chosen alternatives are reported
    /// in [`ImsResult::chosen`].
    ///
    /// # Errors
    ///
    /// Returns [`ImsError::NoFeasibleIi`] as for
    /// [`schedule`](Self::schedule).
    pub fn schedule_with_alternatives(
        &self,
        g: &DepGraph,
        machine: &MachineDescription,
        groups: &AltGroups,
        repr: Representation,
        mii: u32,
    ) -> Result<ImsResult, ImsError> {
        let mut scratch = SchedScratch::new();
        self.schedule_inner(g, machine, repr, mii, Some(groups), None, &mut scratch)
    }

    #[allow(clippy::too_many_arguments)]
    fn schedule_inner(
        &self,
        g: &DepGraph,
        machine: &MachineDescription,
        repr: Representation,
        mii: u32,
        groups: Option<&AltGroups>,
        mut cache: Option<&mut ModuloMaskCache>,
        scratch: &mut SchedScratch,
    ) -> Result<ImsResult, ImsError> {
        let n = g.num_nodes();
        let budget_total = ((self.config.budget_ratio * n as f64).ceil() as u64).max(1);

        let mut counters = WorkCounters::new();
        let mut decisions_total = 0u64;
        let mut reversed_by_resource = 0u64;
        let mut reversed_by_dependence = 0u64;
        let mut per_attempt_ratio = scratch.take_ratios();
        let mut attempts = 0u32;

        // A caller-supplied MII of 0 is meaningless (an II is at least 1
        // cycle) and would underflow the slot-window arithmetic; clamp
        // rather than panic.
        let mut ii = mii.max(1);
        while ii <= self.config.max_ii {
            attempts += 1;
            let span = rmd_obs::span_with("sched", "attempt", "ii", u64::from(ii));
            // Per-attempt reservation table. The cached bitvector path
            // refits the module held in the scratch in place (no boxing,
            // no per-attempt construction); the other paths build a
            // fresh module as before.
            let outcome = match repr {
                Representation::Discrete => {
                    let mut module = ModuloDiscreteModule::new(machine, ii);
                    let o = self.attempt(g, ii, budget_total, &mut module, groups, scratch);
                    counters.merge(module.counters());
                    o
                }
                Representation::Bitvec(layout) => match cache.as_deref_mut() {
                    Some(c) => {
                        let mut slot = scratch.module.take();
                        let module = c.module_reusing(ii, &mut slot);
                        let o = self.attempt(g, ii, budget_total, module, groups, scratch);
                        counters.merge(module.counters());
                        scratch.module = slot;
                        o
                    }
                    None => {
                        let mut module = ModuloBitvecModule::new(machine, ii, layout);
                        let o = self.attempt(g, ii, budget_total, &mut module, groups, scratch);
                        counters.merge(module.counters());
                        o
                    }
                },
            };
            decisions_total += outcome.decisions;
            reversed_by_resource += outcome.reversed_by_resource;
            reversed_by_dependence += outcome.reversed_by_dependence;
            per_attempt_ratio.push(outcome.decisions as f64 / n as f64);
            drop(span);
            if outcome.reversed_by_resource > 0 {
                rmd_obs::instant_with(
                    "sched",
                    "evictions",
                    "count",
                    outcome.reversed_by_resource,
                );
            }
            if outcome.times.is_none() {
                rmd_obs::instant_with("sched", "budget_exhausted", "spent", outcome.decisions);
            }
            if let Some((times, chosen)) = outcome.times {
                return Ok(ImsResult {
                    times,
                    chosen,
                    ii,
                    mii,
                    decisions: decisions_total,
                    reversed_by_resource,
                    reversed_by_dependence,
                    attempts,
                    per_attempt_ratio,
                    counters,
                });
            }
            ii += 1;
        }
        Err(ImsError::NoFeasibleIi {
            max_ii: self.config.max_ii,
        })
    }

    fn attempt(
        &self,
        g: &DepGraph,
        ii: u32,
        budget: u64,
        module: &mut dyn ContentionQuery,
        groups: Option<&AltGroups>,
        s: &mut SchedScratch,
    ) -> AttemptOutcome {
        let n = g.num_nodes();
        heights_into(g, ii, &mut s.height);
        s.time.clear();
        s.time.resize(n, None);
        s.prev_time.clear();
        s.prev_time.resize(n, None);
        s.node_ops.clear();
        s.node_ops.extend(g.nodes().map(|v| g.op(v)));
        // Max-heap on (height, reverse node id) for determinism: unique
        // keys make the pop order independent of insertion order, so
        // reusing the heap's buffer cannot change the schedule.
        s.queue.clear();
        {
            let height = &s.height;
            s.queue
                .extend(g.nodes().map(|v| (height[v.index()], core::cmp::Reverse(v.0))));
        }
        s.queued.clear();
        s.queued.resize(n, true);

        let mut decisions = 0u64;
        let mut reversed_by_resource = 0u64;
        let mut reversed_by_dependence = 0u64;

        while let Some((_, core::cmp::Reverse(vid))) = s.queue.pop() {
            let v = NodeId(vid);
            if !s.queued[v.index()] {
                continue; // stale entry
            }
            if decisions >= budget {
                return AttemptOutcome {
                    times: None,
                    decisions,
                    reversed_by_resource,
                    reversed_by_dependence,
                };
            }
            s.queued[v.index()] = false;

            // Earliest start from *scheduled* predecessors.
            let mut estart = 0i64;
            for e in g.pred_edges(v) {
                if let Some(tu) = s.time[e.from.index()] {
                    let c = i64::from(tu) + i64::from(e.delay)
                        - i64::from(ii) * i64::from(e.distance);
                    estart = estart.max(c);
                }
            }
            let min_t = estart as u32;
            let max_t = min_t + ii - 1;

            // Slot search within one II window; with alternatives, any
            // contention-free alternative of the base op wins the slot.
            let base = g.op(v);
            let search_span = rmd_obs::span_with("sched", "slot_search", "min_t", u64::from(min_t));
            let found: Option<(u32, OpId)> = match self.config.slot_search {
                SlotSearch::PerCycle => {
                    let mut found = None;
                    for t in min_t..=max_t {
                        let hit = match groups {
                            None => module.check(base, t).then_some(base),
                            Some(gr) => rmd_query::check_with_alt(module, gr, base, t),
                        };
                        if let Some(op) = hit {
                            found = Some((t, op));
                            break;
                        }
                    }
                    found
                }
                // The window spans exactly min_t..=max_t (len = II), and
                // the batched search stops at the first free cycle, so
                // both strategies accept the same slot.
                SlotSearch::Window => match groups {
                    None => module.first_free_in(base, min_t, ii).map(|t| (t, base)),
                    Some(gr) => rmd_query::first_free_with_alt(module, gr, base, min_t, ii),
                },
            };
            drop(search_span);
            // Forced placement when the window is full (Rau: estart if
            // never scheduled or estart > prev + 1; else prev + 1); the
            // base operation is forced, evicting whatever holds it.
            let (t, op) = found.unwrap_or_else(|| {
                let t = match s.prev_time[v.index()] {
                    Some(prev) if min_t <= prev + 1 => prev + 1,
                    _ => min_t,
                };
                (t, base)
            });
            s.node_ops[v.index()] = op;

            decisions += 1;
            module.assign_free_into(OpInstance(v.0), op, t, &mut s.evicted);
            s.time[v.index()] = Some(t);
            s.prev_time[v.index()] = Some(t);
            for i in 0..s.evicted.len() {
                let w = NodeId(s.evicted[i].0);
                s.time[w.index()] = None;
                reversed_by_resource += 1;
                if !s.queued[w.index()] {
                    s.queued[w.index()] = true;
                    s.queue.push((s.height[w.index()], core::cmp::Reverse(w.0)));
                }
            }

            // Unschedule successors whose dependence constraints the new
            // placement violates.
            for e in g.succ_edges(v) {
                let w = e.to;
                if w == v {
                    continue;
                }
                if let Some(tw) = s.time[w.index()] {
                    let lb = i64::from(t) + i64::from(e.delay)
                        - i64::from(ii) * i64::from(e.distance);
                    if i64::from(tw) < lb {
                        module.free(OpInstance(w.0), s.node_ops[w.index()], tw);
                        s.time[w.index()] = None;
                        reversed_by_dependence += 1;
                        if !s.queued[w.index()] {
                            s.queued[w.index()] = true;
                            s.queue.push((s.height[w.index()], core::cmp::Reverse(w.0)));
                        }
                    }
                }
            }
        }

        // Queue drained: every node should have a placement. If any is
        // missing the attempt is reported as failed (next II) rather than
        // panicking — an invariant breach must not take the process down.
        let mut times = s.take_times();
        let mut complete = true;
        for t in &s.time {
            match t {
                Some(v) => times.push(*v),
                None => {
                    complete = false;
                    break;
                }
            }
        }
        debug_assert!(complete, "queue drained with unscheduled nodes");
        let times = if complete {
            let mut ops = s.take_ops();
            ops.extend_from_slice(&s.node_ops);
            Some((times, ops))
        } else {
            s.pool_times.push(times);
            None
        };
        AttemptOutcome {
            times,
            decisions,
            reversed_by_resource,
            reversed_by_dependence,
        }
    }
}

struct AttemptOutcome {
    times: Option<(Vec<u32>, Vec<OpId>)>,
    decisions: u64,
    reversed_by_resource: u64,
    reversed_by_dependence: u64,
}

/// Allocating form of [`heights_into`], kept for the brute-force
/// comparison test.
#[cfg(test)]
fn heights(g: &DepGraph, ii: u32) -> Vec<i64> {
    let mut h = Vec::new();
    heights_into(g, ii, &mut h);
    h
}

/// Height-based priority (Rau's HeightR): the longest dependence path
/// from each node onward under `w(e) = delay − II · distance`, computed
/// by relaxation (no positive circuit exists for II ≥ RecMII), written
/// into a reusable buffer (cleared first).
fn heights_into(g: &DepGraph, ii: u32, h: &mut Vec<i64>) {
    let n = g.num_nodes();
    h.clear();
    h.resize(n, 0);
    for _ in 0..=n {
        let mut changed = false;
        for e in g.edges() {
            let w = i64::from(e.delay) - i64::from(ii) * i64::from(e.distance);
            let cand = h[e.to.index()] + w;
            if cand > h[e.from.index()] {
                h[e.from.index()] = cand;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::DepKind;
    use crate::validate::validate;
    use rmd_machine::models::cydra5_subset;

    fn chain(m: &MachineDescription, names: &[&str], delay: i32) -> DepGraph {
        let mut g = DepGraph::new();
        let nodes: Vec<_> = names
            .iter()
            .map(|n| g.add_node(m.op_by_name(n).expect("test setup")))
            .collect();
        for w in nodes.windows(2) {
            g.add_edge(w[0], w[1], delay, 0, DepKind::Flow);
        }
        g
    }

    #[test]
    fn schedules_simple_chain_at_mii() {
        let m = cydra5_subset();
        let g = chain(&m, &["load.w.0", "fadd", "store.w.0"], 8);
        let ims = IterativeModuloScheduler::new(ImsConfig::default());
        for repr in [
            Representation::Discrete,
            Representation::Bitvec(WordLayout::widest(64, m.num_resources())),
        ] {
            let r = ims.schedule(&g, &m, repr).expect("test setup");
            assert_eq!(r.ii, r.mii, "{repr:?}");
            validate(&g, &m, &r).expect("test setup");
        }
    }

    #[test]
    fn recurrence_bounds_ii() {
        let m = cydra5_subset();
        let fadd = m.op_by_name("fadd").expect("test setup");
        let mut g = DepGraph::new();
        let a = g.add_node(fadd);
        let b = g.add_node(fadd);
        g.add_edge(a, b, 7, 0, DepKind::Flow);
        g.add_edge(b, a, 7, 1, DepKind::Flow); // delay 14, distance 1
        let ims = IterativeModuloScheduler::new(ImsConfig::default());
        let r = ims.schedule(&g, &m, Representation::Discrete).expect("test setup");
        assert_eq!(r.mii, 14);
        assert_eq!(r.ii, 14);
        validate(&g, &m, &r).expect("test setup");
    }

    #[test]
    fn resource_pressure_forces_ii() {
        let m = cydra5_subset();
        // 4 independent fadds: fadd_in is used once per op -> ResMII 4.
        let fadd = m.op_by_name("fadd").expect("test setup");
        let mut g = DepGraph::new();
        for _ in 0..4 {
            g.add_node(fadd);
        }
        let ims = IterativeModuloScheduler::new(ImsConfig::default());
        let r = ims.schedule(&g, &m, Representation::Discrete).expect("test setup");
        assert!(r.mii >= 4);
        assert_eq!(r.ii, r.mii);
        validate(&g, &m, &r).expect("test setup");
    }

    #[test]
    fn identical_schedules_across_representations() {
        // The paper verified "precisely the same schedules were produced
        // regardless of the machine description used" — representations
        // must agree too, given the same deterministic scheduler.
        let m = cydra5_subset();
        let g = chain(
            &m,
            &["load.w.0", "load.w.1", "fmul", "fadd", "store.w.1"],
            5,
        );
        let ims = IterativeModuloScheduler::new(ImsConfig::default());
        let a = ims.schedule(&g, &m, Representation::Discrete).expect("test setup");
        let b = ims
            .schedule(
                &g,
                &m,
                Representation::Bitvec(WordLayout::widest(64, m.num_resources())),
            )
            .expect("test setup");
        assert_eq!(a.times, b.times);
        assert_eq!(a.ii, b.ii);
        assert_eq!(a.decisions, b.decisions);
    }

    #[test]
    fn cached_path_matches_uncached_exactly() {
        let m = cydra5_subset();
        let layout = WordLayout::widest(64, m.num_resources());
        let mut cache = ModuloMaskCache::new(&m, layout);
        let ims = IterativeModuloScheduler::new(ImsConfig::default());
        for names in [
            &["load.w.0", "fadd", "store.w.0"][..],
            &["load.w.0", "load.w.1", "fmul", "fadd", "store.w.1"][..],
            &["load.w.0", "fadd", "store.w.0"][..], // repeat: cache hit
        ] {
            let g = chain(&m, names, 5);
            let mii = crate::mii::mii(&g, &m);
            let repr = Representation::Bitvec(layout);
            let plain = ims.schedule_with_mii(&g, &m, repr, mii).expect("test setup");
            let cached = ims
                .schedule_with_mii_cached(&g, &m, repr, mii, &mut cache)
                .expect("test setup");
            assert_eq!(plain.times, cached.times);
            assert_eq!(plain.chosen, cached.chosen);
            assert_eq!(plain.ii, cached.ii);
            assert_eq!(plain.decisions, cached.decisions);
            assert_eq!(plain.counters, cached.counters);
        }
        assert!(cache.hits() > 0, "repeated IIs must hit the cache");
    }

    #[test]
    fn lru_eviction_preserves_schedule_bytes() {
        // An entry cap of 1 makes every II change an eviction; the
        // schedules a daemon hands out must not depend on cache churn.
        let m = cydra5_subset();
        let layout = WordLayout::widest(64, m.num_resources());
        let mut cache = ModuloMaskCache::with_cap(&m, layout, 1);
        let ims = IterativeModuloScheduler::new(ImsConfig::default());
        let repr = Representation::Bitvec(layout);
        // Alternate between graphs whose IIs differ so the cap-1 cache
        // keeps evicting, and repeat each so re-expansion is exercised.
        let fadd = m.op_by_name("fadd").expect("test setup");
        let recurrence = {
            let mut g = DepGraph::new();
            let a = g.add_node(fadd);
            let b = g.add_node(fadd);
            g.add_edge(a, b, 7, 0, DepKind::Flow);
            g.add_edge(b, a, 7, 1, DepKind::Flow); // RecMII 14
            g
        };
        let cases: Vec<DepGraph> = (0..6)
            .map(|i| {
                if i % 2 == 0 {
                    chain(&m, &["load.w.0", "fadd", "store.w.0"], 5)
                } else {
                    recurrence.clone()
                }
            })
            .collect();
        for g in &cases {
            let mii = crate::mii::mii(g, &m);
            let plain = ims.schedule_with_mii(g, &m, repr, mii).expect("test setup");
            let cached = ims
                .schedule_with_mii_cached(g, &m, repr, mii, &mut cache)
                .expect("test setup");
            assert_eq!(plain.times, cached.times);
            assert_eq!(plain.chosen, cached.chosen);
            assert_eq!(plain.ii, cached.ii);
            assert_eq!(plain.decisions, cached.decisions);
            assert_eq!(plain.counters, cached.counters);
        }
        assert!(cache.evictions() > 0, "cap-1 cache must have evicted");
        assert_eq!(cache.num_cached(), 1);
    }

    #[test]
    #[should_panic(expected = "different word layout")]
    fn cached_path_rejects_layout_mismatch() {
        let m = cydra5_subset();
        let mut cache = ModuloMaskCache::new(&m, WordLayout::with_k(64, 1));
        let g = chain(&m, &["load.w.0", "fadd"], 5);
        let ims = IterativeModuloScheduler::new(ImsConfig::default());
        let _ = ims.schedule_with_mii_cached(
            &g,
            &m,
            Representation::Bitvec(WordLayout::with_k(64, 2)),
            1,
            &mut cache,
        );
    }

    #[test]
    fn tracing_emits_one_attempt_span_per_ii() {
        static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
        let _g = LOCK.lock().unwrap();
        let m = cydra5_subset();
        let g = chain(&m, &["load.w.0", "fadd", "store.w.0"], 8);
        let ims = IterativeModuloScheduler::new(ImsConfig::default());
        rmd_obs::set_enabled(true);
        let _ = rmd_obs::drain_events();
        let r = ims.schedule(&g, &m, Representation::Discrete).expect("test setup");
        let events = rmd_obs::drain_events();
        rmd_obs::set_enabled(false);
        let attempts: Vec<_> = events
            .iter()
            .filter(|e| e.cat == "sched" && e.name == "attempt")
            .collect();
        assert_eq!(attempts.len(), r.attempts as usize);
        assert_eq!(attempts.last().unwrap().arg, Some(("ii", u64::from(r.ii))));
    }

    #[test]
    fn window_slot_search_is_byte_identical_to_per_cycle() {
        // The tentpole invariant: batched window queries must reproduce
        // the scalar slot search exactly — same schedules, same work
        // accounting — with `check_window` the only counter allowed to
        // differ (it is new work metadata, not new work).
        let m = cydra5_subset();
        let mut graphs = vec![
            chain(&m, &["load.w.0", "fadd", "store.w.0"], 8),
            chain(
                &m,
                &["load.w.0", "load.w.1", "fmul", "fadd", "store.w.1"],
                5,
            ),
        ];
        // Resource pressure: forced placements and evictions exercise
        // the full-window (found = None) path too.
        let fadd = m.op_by_name("fadd").expect("test setup");
        let mut pressured = DepGraph::new();
        for _ in 0..6 {
            pressured.add_node(fadd);
        }
        graphs.push(pressured);

        let per_cycle_ims = IterativeModuloScheduler::new(ImsConfig {
            slot_search: SlotSearch::PerCycle,
            ..ImsConfig::default()
        });
        let window_ims = IterativeModuloScheduler::new(ImsConfig::default());
        for (i, g) in graphs.iter().enumerate() {
            for repr in [
                Representation::Discrete,
                Representation::Bitvec(WordLayout::widest(64, m.num_resources())),
            ] {
                let a = per_cycle_ims.schedule(g, &m, repr).expect("test setup");
                let b = window_ims.schedule(g, &m, repr).expect("test setup");
                let ctx = format!("graph {i}, {repr:?}");
                assert_eq!(a.times, b.times, "{ctx}");
                assert_eq!(a.chosen, b.chosen, "{ctx}");
                assert_eq!(a.ii, b.ii, "{ctx}");
                assert_eq!(a.mii, b.mii, "{ctx}");
                assert_eq!(a.decisions, b.decisions, "{ctx}");
                assert_eq!(a.reversed_by_resource, b.reversed_by_resource, "{ctx}");
                assert_eq!(a.reversed_by_dependence, b.reversed_by_dependence, "{ctx}");
                assert_eq!(a.attempts, b.attempts, "{ctx}");
                assert_eq!(a.per_attempt_ratio, b.per_attempt_ratio, "{ctx}");
                assert_eq!(a.counters.check, b.counters.check, "{ctx}");
                assert_eq!(a.counters.assign, b.counters.assign, "{ctx}");
                assert_eq!(a.counters.assign_free, b.counters.assign_free, "{ctx}");
                assert_eq!(a.counters.free, b.counters.free, "{ctx}");
                assert_eq!(a.counters.transitions, b.counters.transitions, "{ctx}");
                // The scalar path never issues window queries; the
                // window path meters every slot search through one.
                assert_eq!(a.counters.check_window.calls, 0, "{ctx}");
                assert!(b.counters.check_window.calls > 0, "{ctx}");
            }
        }
    }

    #[test]
    fn scratch_reuse_is_byte_identical() {
        // One scratch carried across loops of different shapes and
        // representations must reproduce the scratch-free path exactly:
        // schedules, statistics, and counters.
        let m = cydra5_subset();
        let layout = WordLayout::widest(64, m.num_resources());
        let mut cache = ModuloMaskCache::new(&m, layout);
        let mut plain_cache = ModuloMaskCache::new(&m, layout);
        let mut scratch = SchedScratch::new();
        let ims = IterativeModuloScheduler::new(ImsConfig::default());

        let fadd = m.op_by_name("fadd").expect("test setup");
        let mut pressured = DepGraph::new();
        for _ in 0..6 {
            pressured.add_node(fadd); // evictions + forced placements
        }
        let mut recurrence = DepGraph::new();
        let a = recurrence.add_node(fadd);
        let b = recurrence.add_node(fadd);
        recurrence.add_edge(a, b, 7, 0, DepKind::Flow);
        recurrence.add_edge(b, a, 7, 1, DepKind::Flow);
        let graphs = [
            chain(&m, &["load.w.0", "fadd", "store.w.0"], 8),
            pressured,
            recurrence,
            chain(&m, &["load.w.0", "load.w.1", "fmul", "fadd", "store.w.1"], 5),
            chain(&m, &["load.w.0", "fadd", "store.w.0"], 8), // repeat: warm
        ];
        for (i, g) in graphs.iter().enumerate() {
            let mii = crate::mii::mii(g, &m);
            for repr in [Representation::Discrete, Representation::Bitvec(layout)] {
                let ctx = format!("graph {i}, {repr:?}");
                let plain = ims.schedule_with_mii(g, &m, repr, mii).expect("test setup");
                let scratched = ims
                    .schedule_with_mii_scratch(g, &m, repr, mii, &mut scratch)
                    .expect("test setup");
                assert_eq!(plain.times, scratched.times, "{ctx}");
                assert_eq!(plain.chosen, scratched.chosen, "{ctx}");
                assert_eq!(plain.ii, scratched.ii, "{ctx}");
                assert_eq!(plain.decisions, scratched.decisions, "{ctx}");
                assert_eq!(plain.reversed_by_resource, scratched.reversed_by_resource, "{ctx}");
                assert_eq!(plain.per_attempt_ratio, scratched.per_attempt_ratio, "{ctx}");
                assert_eq!(plain.counters, scratched.counters, "{ctx}");
                scratch.recycle(scratched);

                let cached_plain = ims
                    .schedule_with_mii_cached(g, &m, repr, mii, &mut plain_cache)
                    .expect("test setup");
                let cached_scratched = ims
                    .schedule_with_mii_cached_scratch(g, &m, repr, mii, &mut cache, &mut scratch)
                    .expect("test setup");
                assert_eq!(cached_plain.times, cached_scratched.times, "{ctx} cached");
                assert_eq!(cached_plain.counters, cached_scratched.counters, "{ctx} cached");
                assert_eq!(plain.times, cached_scratched.times, "{ctx} cached-vs-plain");
                scratch.recycle(cached_scratched);
            }
        }
    }

    #[test]
    fn budget_statistics_are_recorded() {
        let m = cydra5_subset();
        let g = chain(&m, &["load.w.0", "fadd", "store.w.0"], 8);
        let ims = IterativeModuloScheduler::new(ImsConfig::default());
        let r = ims.schedule(&g, &m, Representation::Discrete).expect("test setup");
        assert!(r.decisions >= g.num_nodes() as u64);
        assert_eq!(r.per_attempt_ratio.len(), r.attempts as usize);
        assert!(r.counters.check.calls > 0);
        assert!(r.counters.assign_free.calls >= r.decisions);
        assert!((r.ii_ratio() - 1.0).abs() < 1e-9);
    }
}

#[cfg(test)]
mod edge_tests {
    use super::*;
    use crate::graph::{DepGraph, DepKind};
    use rmd_machine::MachineBuilder;

    /// A machine where two op classes can never coexist in one II=1
    /// kernel, so tiny max_ii forces failure.
    fn contended() -> (MachineDescription, rmd_machine::OpId) {
        let mut b = MachineBuilder::new("tight");
        let r = b.resource("r");
        b.operation("x").usage(r, 0).finish();
        let m = b.build().expect("test setup");
        let x = m.op_by_name("x").expect("test setup");
        (m, x)
    }

    #[test]
    fn max_ii_limit_yields_error() {
        let (m, x) = contended();
        let mut g = DepGraph::new();
        for _ in 0..4 {
            g.add_node(x); // ResMII = 4
        }
        let ims = IterativeModuloScheduler::new(ImsConfig {
            budget_ratio: 6.0,
            max_ii: 2, // below ResMII: the II loop never runs
            ..ImsConfig::default()
        });
        let e = ims.schedule(&g, &m, Representation::Discrete).unwrap_err();
        assert_eq!(e, ImsError::NoFeasibleIi { max_ii: 2 });
        assert_eq!(e.to_string(), "no modulo schedule found for any II ≤ 2");
    }

    #[test]
    fn single_node_loop_schedules_at_ii_one() {
        let (m, x) = contended();
        let mut g = DepGraph::new();
        g.add_node(x);
        let r = IterativeModuloScheduler::default()
            .schedule(&g, &m, Representation::Discrete)
            .expect("test setup");
        assert_eq!(r.ii, 1);
        assert_eq!(r.times, vec![0]);
        assert_eq!(r.decisions, 1);
        assert_eq!(r.attempts, 1);
    }

    #[test]
    fn self_edge_constrains_but_schedules() {
        let (m, x) = contended();
        let mut g = DepGraph::new();
        let n = g.add_node(x);
        g.add_edge(n, n, 5, 1, DepKind::Flow); // RecMII 5
        let r = IterativeModuloScheduler::default()
            .schedule(&g, &m, Representation::Discrete)
            .expect("test setup");
        assert_eq!(r.mii, 5);
        assert_eq!(r.ii, 5);
        crate::validate(&g, &m, &r).expect("test setup");
    }

    #[test]
    fn heights_match_brute_force_longest_path() {
        // height(v) = max over paths from v of Σ(delay − II·distance),
        // computed here by exhaustive DFS on a small graph with a
        // recurrence (no positive circuit at feasible II).
        let (m, x) = contended();
        let _ = &m;
        let mut g = DepGraph::new();
        let n: Vec<_> = (0..4).map(|_| g.add_node(x)).collect();
        g.add_edge(n[0], n[1], 3, 0, DepKind::Flow);
        g.add_edge(n[1], n[2], 2, 0, DepKind::Flow);
        g.add_edge(n[0], n[2], 4, 0, DepKind::Flow);
        g.add_edge(n[2], n[3], 1, 0, DepKind::Flow);
        g.add_edge(n[3], n[1], 2, 2, DepKind::Flow); // carried back edge
        let ii = 4; // RecMII of the circuit (2+1+2)/2 = ceil(2.5) = 3
        let h = heights(&g, ii);

        fn dfs(g: &DepGraph, v: NodeId, ii: i64, depth: usize) -> i64 {
            if depth > 16 {
                return i64::MIN / 2; // circuit guard; weights make loops unprofitable
            }
            let mut best = 0;
            for e in g.succ_edges(v) {
                let w = i64::from(e.delay) - ii * i64::from(e.distance);
                best = best.max(w + dfs(g, e.to, ii, depth + 1));
            }
            best
        }
        for v in g.nodes() {
            assert_eq!(h[v.index()], dfs(&g, v, i64::from(ii), 0), "{v:?}");
        }
    }

    #[test]
    fn zero_delay_dependences_allow_same_cycle() {
        let mut b = MachineBuilder::new("two");
        let r0 = b.resource("a");
        let r1 = b.resource("b");
        b.operation("x").usage(r0, 0).finish();
        b.operation("y").usage(r1, 0).finish();
        let m = b.build().expect("test setup");
        let mut g = DepGraph::new();
        let x = g.add_node(m.op_by_name("x").expect("test setup"));
        let y = g.add_node(m.op_by_name("y").expect("test setup"));
        g.add_edge(x, y, 0, 0, DepKind::Anti);
        let r = IterativeModuloScheduler::default()
            .schedule(&g, &m, Representation::Discrete)
            .expect("test setup");
        assert_eq!(r.ii, 1);
        assert!(r.times[y.index()] >= r.times[x.index()]);
        crate::validate(&g, &m, &r).expect("test setup");
    }
}
