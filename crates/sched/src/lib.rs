//! Schedulers driving the contention query module (paper §8).
//!
//! The paper evaluates its reduced machine descriptions by running Rau's
//! *Iterative Modulo Scheduler* (MICRO-27, 1994) over 1327 loops. This
//! crate implements that scheduler faithfully:
//!
//! * [`DepGraph`] — dependence graphs with `(delay, distance)` edges,
//!   including loop-carried dependences (distance ≥ 1).
//! * [`mii`] — the minimum initiation interval: the maximum of the
//!   resource-constrained bound ([`mii::res_mii`]) and the
//!   recurrence-constrained bound ([`mii::rec_mii`]).
//! * [`IterativeModuloScheduler`] — height-priority scheduling with a
//!   bounded budget of scheduling decisions (6N by default), forced
//!   placement with `assign&free` eviction, and II escalation — the
//!   *unrestricted scheduling model*: operations are placed in arbitrary
//!   order and prior decisions are reversed.
//! * [`ListScheduler`] — an operation-driven acyclic scheduler with
//!   support for dangling resource requirements from predecessor blocks
//!   (paper §1's boundary conditions).
//! * [`validate`] — independent validation of a schedule against *any*
//!   machine description; scheduling with a reduced description and
//!   validating against the original exercises the paper's equivalence
//!   claim end to end.
//!
//! # Example
//!
//! ```
//! use rmd_machine::models::cydra5_subset;
//! use rmd_sched::{DepGraph, DepKind, ImsConfig, IterativeModuloScheduler, Representation};
//!
//! let m = cydra5_subset();
//! let load = m.op_by_name("load.w.0").expect("test setup");
//! let fadd = m.op_by_name("fadd").expect("test setup");
//! let store = m.op_by_name("store.w.0").expect("test setup");
//!
//! // for i { a[i] = b[i] + c } with the add depending on the load.
//! let mut g = DepGraph::new();
//! let n0 = g.add_node(load);
//! let n1 = g.add_node(fadd);
//! let n2 = g.add_node(store);
//! g.add_edge(n0, n1, 21, 0, DepKind::Flow);
//! g.add_edge(n1, n2, 7, 0, DepKind::Flow);
//!
//! let ims = IterativeModuloScheduler::new(ImsConfig::default());
//! let result = ims.schedule(&g, &m, Representation::Discrete).expect("test setup");
//! assert_eq!(result.ii, result.mii); // achieves the minimum II
//! rmd_sched::validate(&g, &m, &result).expect("test setup");
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod graph;
mod ims;
mod list;
pub mod mii;
mod scratch;
mod validate;

pub use graph::{DepGraph, DepKind, Edge, NodeId};
pub use ims::{
    ImsConfig, ImsError, ImsResult, IterativeModuloScheduler, Representation, SlotSearch,
};
pub use list::{schedule_trace, BoundaryOp, ListResult, ListScheduler, TraceResult};
pub use scratch::SchedScratch;
pub use validate::{validate, validate_list, ScheduleError};
