//! Operation-driven list scheduling with boundary conditions.

use crate::graph::{DepGraph, NodeId};
use crate::ims::Representation;
use rmd_machine::{MachineDescription, OpId};
use rmd_query::{
    BitvecModule, ContentionQuery, DiscreteModule, OpInstance, WorkCounters,
};

/// A dangling resource requirement from a predecessor basic block: an
/// operation issued `issue_cycle` cycles relative to this block's entry
/// (negative = before the block starts) whose reservation table may still
/// occupy resources inside the block (paper §1: "the resource
/// requirements at the beginning of a basic block consist of the union of
/// all the resource requirements dangling from predecessor blocks").
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct BoundaryOp {
    /// The operation issued in a predecessor block.
    pub op: OpId,
    /// Its issue cycle relative to block entry (usually negative).
    pub issue_cycle: i32,
}

/// The result of list scheduling.
#[derive(Clone, Debug)]
pub struct ListResult {
    /// Issue cycle per node, relative to block entry.
    pub times: Vec<i32>,
    /// Schedule length: one past the last issue cycle.
    pub length: i32,
    /// Query-module work counters.
    pub counters: WorkCounters,
    /// The boundary operations the schedule was built around.
    pub boundary: Vec<BoundaryOp>,
}

/// An operation-driven (critical-path-first) list scheduler for acyclic
/// dependence graphs, with precise handling of dangling resource
/// requirements from predecessor blocks.
///
/// Operations are placed in order of decreasing critical-path height —
/// not in cycle order — each at the earliest contention-free cycle at or
/// after its dependence-earliest start. This is the Cydra 5 compiler's
/// operation-driven scalar scheduling model the paper cites.
///
/// # Example
///
/// ```
/// use rmd_machine::models::mips_r3000;
/// use rmd_sched::{BoundaryOp, DepGraph, DepKind, ListScheduler, Representation};
///
/// let m = mips_r3000();
/// let div = m.op_by_name("div.s").expect("test setup");
/// let alu = m.op_by_name("alu").expect("test setup");
/// let mut g = DepGraph::new();
/// g.add_node(alu);
///
/// // A divide issued 3 cycles before block entry still holds the divider.
/// let sched = ListScheduler::with_boundary(vec![BoundaryOp { op: div, issue_cycle: -3 }]);
/// let r = sched.schedule(&g, &m, Representation::Discrete);
/// rmd_sched::validate_list(&g, &m, &r).expect("test setup");
/// ```
#[derive(Clone, Debug, Default)]
pub struct ListScheduler {
    boundary: Vec<BoundaryOp>,
}

impl ListScheduler {
    /// A scheduler with no dangling predecessors.
    pub fn new() -> Self {
        Self::default()
    }

    /// A scheduler seeded with dangling resource requirements.
    pub fn with_boundary(boundary: Vec<BoundaryOp>) -> Self {
        ListScheduler { boundary }
    }

    /// Schedules the acyclic graph `g` over `machine`.
    ///
    /// # Panics
    ///
    /// Panics if `g` has loop-carried or cyclic intra-iteration
    /// dependences (list scheduling is for acyclic blocks).
    pub fn schedule(
        &self,
        g: &DepGraph,
        machine: &MachineDescription,
        repr: Representation,
    ) -> ListResult {
        assert!(
            g.intra_iteration_acyclic() && !g.has_recurrence(),
            "list scheduling requires an acyclic graph"
        );
        let n = g.num_nodes();
        // Shift so every boundary issue lands at a nonnegative cycle.
        let shift: i64 = -self
            .boundary
            .iter()
            .map(|b| i64::from(b.issue_cycle))
            .min()
            .unwrap_or(0)
            .min(0);

        let mut module: Box<dyn ContentionQuery> = match repr {
            Representation::Discrete => Box::new(DiscreteModule::new(machine)),
            Representation::Bitvec(layout) => Box::new(BitvecModule::new(machine, layout)),
        };
        for (i, b) in self.boundary.iter().enumerate() {
            let t = (i64::from(b.issue_cycle) + shift) as u32;
            module.assign(OpInstance((n + i) as u32), b.op, t);
        }

        // Priority: critical-path height; ties broken by topological rank
        // so predecessors always precede (0-delay edges included).
        let height = acyclic_heights(g);
        let topo = topo_ranks(g);
        let mut order: Vec<NodeId> = g.nodes().collect();
        order.sort_by_key(|v| (-height[v.index()], topo[v.index()], v.0));

        let mut times = vec![0i64; n];
        for v in order {
            let mut estart = shift;
            for e in g.pred_edges(v) {
                estart = estart.max(times[e.from.index()] + i64::from(e.delay));
            }
            let op = g.op(v);
            let mut t = estart as u32;
            while !module.check(op, t) {
                t += 1;
            }
            module.assign(OpInstance(v.0), op, t);
            times[v.index()] = i64::from(t);
        }

        let rel: Vec<i32> = times.iter().map(|&t| (t - shift) as i32).collect();
        ListResult {
            length: rel.iter().map(|&t| t + 1).max().unwrap_or(0),
            times: rel,
            counters: *module.counters(),
            boundary: self.boundary.clone(),
        }
    }
}

/// The schedule of a trace (a sequence of basic blocks executed in
/// order), with dangling resource requirements carried precisely across
/// every boundary.
#[derive(Clone, Debug)]
pub struct TraceResult {
    /// Per-block list-scheduling results (times relative to each block's
    /// entry).
    pub blocks: Vec<ListResult>,
    /// Absolute entry cycle of each block.
    pub entries: Vec<i64>,
    /// Total trace length in cycles (one past the last reservation).
    pub total_cycles: i64,
}

/// Schedules a trace of acyclic blocks in order, carrying each block's
/// unfinished reservations into the next block as [`BoundaryOp`]s —
/// paper §1: "the resource requirements at the beginning of a basic
/// block consist of the union of all the resource requirements dangling
/// from predecessor basic blocks."
///
/// Block `i+1` begins issuing the cycle after block `i`'s last issue;
/// any reservation table still occupying resources at that point
/// becomes a dangling requirement with a negative issue cycle.
///
/// # Panics
///
/// Panics if any block is cyclic (see [`ListScheduler::schedule`]).
pub fn schedule_trace(
    blocks: &[DepGraph],
    machine: &MachineDescription,
    repr: Representation,
) -> TraceResult {
    let mut results = Vec::with_capacity(blocks.len());
    let mut entries = Vec::with_capacity(blocks.len());
    let mut entry: i64 = 0;
    let mut dangling: Vec<BoundaryOp> = Vec::new();
    let mut total: i64 = 0;

    for g in blocks {
        entries.push(entry);
        let r = ListScheduler::with_boundary(dangling.clone()).schedule(g, machine, repr);
        // Next block starts the cycle after this block's last issue.
        let block_len = i64::from(r.length.max(1));

        // Reservations still live past the boundary: this block's ops...
        let mut next_dangling = Vec::new();
        for v in g.nodes() {
            let t = i64::from(r.times[v.index()]);
            let len = i64::from(machine.operation(g.op(v)).table().length());
            total = total.max(entry + t + len);
            if t + len > block_len {
                next_dangling.push(BoundaryOp {
                    op: g.op(v),
                    issue_cycle: (t - block_len) as i32,
                });
            }
        }
        // ...plus inherited danglers that outlive this block too.
        for b in &dangling {
            let len = i64::from(machine.operation(b.op).table().length());
            if i64::from(b.issue_cycle) + len > block_len {
                next_dangling.push(BoundaryOp {
                    op: b.op,
                    issue_cycle: (i64::from(b.issue_cycle) - block_len) as i32,
                });
            }
        }
        dangling = next_dangling;
        entry += block_len;
        total = total.max(entry);
        results.push(r);
    }

    TraceResult {
        blocks: results,
        entries,
        total_cycles: total,
    }
}

fn acyclic_heights(g: &DepGraph) -> Vec<i64> {
    let n = g.num_nodes();
    let mut h = vec![0i64; n];
    // Reverse-topological relaxation (graph is acyclic; simple fixpoint).
    for _ in 0..=n {
        let mut changed = false;
        for e in g.edges() {
            let cand = h[e.to.index()] + i64::from(e.delay);
            if cand > h[e.from.index()] {
                h[e.from.index()] = cand;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    h
}

fn topo_ranks(g: &DepGraph) -> Vec<usize> {
    let n = g.num_nodes();
    let mut indeg = vec![0usize; n];
    for e in g.edges() {
        indeg[e.to.index()] += 1;
    }
    let mut queue: std::collections::VecDeque<usize> =
        (0..n).filter(|&i| indeg[i] == 0).collect();
    let mut rank = vec![0usize; n];
    let mut next = 0;
    while let Some(v) = queue.pop_front() {
        rank[v] = next;
        next += 1;
        for e in g.succ_edges(NodeId(v as u32)) {
            indeg[e.to.index()] -= 1;
            if indeg[e.to.index()] == 0 {
                queue.push_back(e.to.index());
            }
        }
    }
    rank
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::DepKind;
    use crate::validate::validate_list;
    use rmd_machine::models::mips_r3000;
    use rmd_query::WordLayout;

    #[test]
    fn respects_dependences_and_resources() {
        let m = mips_r3000();
        let load = m.op_by_name("load").expect("test setup");
        let alu = m.op_by_name("alu").expect("test setup");
        let mut g = DepGraph::new();
        let a = g.add_node(load);
        let b = g.add_node(alu);
        g.add_edge(a, b, 2, 0, DepKind::Flow);
        let r = ListScheduler::new().schedule(&g, &m, Representation::Discrete);
        assert!(r.times[b.index()] >= r.times[a.index()] + 2);
        validate_list(&g, &m, &r).expect("test setup");
    }

    #[test]
    fn single_issue_machine_serializes() {
        let m = mips_r3000();
        let alu = m.op_by_name("alu").expect("test setup");
        let mut g = DepGraph::new();
        for _ in 0..4 {
            g.add_node(alu);
        }
        let r = ListScheduler::new().schedule(&g, &m, Representation::Discrete);
        let mut ts = r.times.clone();
        ts.sort_unstable();
        assert_eq!(ts, vec![0, 1, 2, 3]);
        validate_list(&g, &m, &r).expect("test setup");
    }

    #[test]
    fn dangling_divider_delays_the_block() {
        let m = mips_r3000();
        let div = m.op_by_name("div.s").expect("test setup");
        let mut g = DepGraph::new();
        let d = g.add_node(div);
        // A div.s issued 4 cycles before entry holds fp-div through
        // block-relative cycle 6; a new div.s can't start until its
        // usages clear.
        let sched = ListScheduler::with_boundary(vec![BoundaryOp {
            op: div,
            issue_cycle: -4,
        }]);
        let r = sched.schedule(&g, &m, Representation::Discrete);
        assert!(r.times[d.index()] > 0, "{:?}", r.times);
        validate_list(&g, &m, &r).expect("test setup");

        // Without the dangling op it starts at 0.
        let r0 = ListScheduler::new().schedule(&g, &m, Representation::Discrete);
        assert_eq!(r0.times[d.index()], 0);
    }

    #[test]
    fn representations_agree() {
        let m = mips_r3000();
        let names = ["load", "alu", "mul.s", "add.s", "store"];
        let mut g = DepGraph::new();
        let nodes: Vec<_> = names
            .iter()
            .map(|n| g.add_node(m.op_by_name(n).expect("test setup")))
            .collect();
        g.add_edge(nodes[0], nodes[1], 2, 0, DepKind::Flow);
        g.add_edge(nodes[1], nodes[3], 1, 0, DepKind::Flow);
        g.add_edge(nodes[2], nodes[3], 4, 0, DepKind::Flow);
        g.add_edge(nodes[3], nodes[4], 2, 0, DepKind::Flow);
        let d = ListScheduler::new().schedule(&g, &m, Representation::Discrete);
        let v = ListScheduler::new().schedule(
            &g,
            &m,
            Representation::Bitvec(WordLayout::widest(64, m.num_resources())),
        );
        assert_eq!(d.times, v.times);
        validate_list(&g, &m, &d).expect("test setup");
    }

    #[test]
    fn trace_carries_dangling_reservations() {
        let m = mips_r3000();
        let div = m.op_by_name("div.s").expect("test setup");
        let alu = m.op_by_name("alu").expect("test setup");
        // Block 1: a div.s issued near its end dangles into block 2.
        let mut b1 = DepGraph::new();
        let a = b1.add_node(alu);
        let d = b1.add_node(div);
        b1.add_edge(a, d, 1, 0, DepKind::Flow);
        // Block 2: another div.s, which must wait for the divider.
        let mut b2 = DepGraph::new();
        b2.add_node(div);

        let tr = schedule_trace(&[b1.clone(), b2.clone()], &m, Representation::Discrete);
        assert_eq!(tr.blocks.len(), 2);
        assert_eq!(tr.entries[0], 0);
        assert!(tr.entries[1] > 0);
        // The divider is busy across the boundary: block 2's div can't
        // start at its entry cycle.
        assert!(
            tr.blocks[1].times[0] > 0,
            "block-2 div at {}",
            tr.blocks[1].times[0]
        );
        // And each block validates with its inherited boundary.
        crate::validate_list(&b1, &m, &tr.blocks[0]).expect("test setup");
        crate::validate_list(&b2, &m, &tr.blocks[1]).expect("test setup");
        assert!(tr.total_cycles >= tr.entries[1]);
    }

    #[test]
    fn trace_reservations_never_collide_globally() {
        // Simulate all blocks' reservations on one absolute timeline and
        // assert exclusivity — the global form of boundary correctness.
        let m = mips_r3000();
        let names = ["load", "mul.s", "div.s", "alu", "store", "div.s"];
        let blocks: Vec<DepGraph> = names
            .chunks(2)
            .map(|pair| {
                let mut g = DepGraph::new();
                let x = g.add_node(m.op_by_name(pair[0]).expect("test setup"));
                let y = g.add_node(m.op_by_name(pair[1]).expect("test setup"));
                g.add_edge(x, y, 1, 0, DepKind::Flow);
                g
            })
            .collect();
        let tr = schedule_trace(&blocks, &m, Representation::Discrete);
        let mut taken = std::collections::HashMap::new();
        for (bi, (g, r)) in blocks.iter().zip(&tr.blocks).enumerate() {
            for v in g.nodes() {
                let abs = tr.entries[bi] + i64::from(r.times[v.index()]);
                for u in m.operation(g.op(v)).table().usages() {
                    let key = (u.resource.0, abs + i64::from(u.cycle));
                    let prev = taken.insert(key, (bi, v));
                    assert!(prev.is_none(), "{key:?} reserved twice: {prev:?}");
                }
            }
        }
    }

    #[test]
    fn zero_delay_ties_schedule_predecessor_first() {
        let m = mips_r3000();
        let alu = m.op_by_name("alu").expect("test setup");
        let mut g = DepGraph::new();
        let a = g.add_node(alu);
        let b = g.add_node(alu);
        g.add_edge(a, b, 0, 0, DepKind::Anti);
        let r = ListScheduler::new().schedule(&g, &m, Representation::Discrete);
        assert!(r.times[b.index()] >= r.times[a.index()]);
        validate_list(&g, &m, &r).expect("test setup");
    }
}
