//! Minimum initiation interval bounds.
//!
//! A modulo schedule's II is bounded below by resource pressure
//! ([`res_mii`]) and by recurrence circuits ([`rec_mii`]); [`mii`] is
//! their maximum. These are the standard bounds of Rau's Iterative Modulo
//! Scheduling and appear in the paper's Table 5 as the "MII" against
//! which schedule quality (II/MII) is judged.

use crate::graph::DepGraph;
use rmd_machine::MachineDescription;

/// Resource-constrained MII: each resource has II modulo slots per
/// iteration and every usage claims one, so
/// `ResMII = max_r Σ_nodes usages_r(op(node))`.
///
/// Additionally, one operation's own table must not self-overlap
/// (two usages of a resource in cycles `c ≡ c' (mod II)`), which imposes
/// a per-operation lower bound folded in here as well.
pub fn res_mii(g: &DepGraph, m: &MachineDescription) -> u32 {
    let mut per_resource = vec![0u32; m.num_resources()];
    for n in g.nodes() {
        let op = m.operation(g.op(n));
        for u in op.table().usages() {
            per_resource[u.resource.index()] += 1;
        }
    }
    let pressure = per_resource.into_iter().max().unwrap_or(1).max(1);

    // Self-overlap bound: find the smallest II at which every op fits.
    let mut ii = pressure;
    'outer: loop {
        for n in g.nodes() {
            let t = m.operation(g.op(n)).table();
            for r in t.resources() {
                let cycles = t.usage_set(r);
                for (i, &c) in cycles.iter().enumerate() {
                    for &c2 in &cycles[i + 1..] {
                        if c % ii == c2 % ii {
                            ii += 1;
                            continue 'outer;
                        }
                    }
                }
            }
        }
        return ii;
    }
}

/// Recurrence-constrained MII: the smallest II such that no dependence
/// circuit has positive slack `Σ delay − II · Σ distance > 0`; i.e.
/// `RecMII = max over circuits ⌈Σ delay / Σ distance⌉`.
///
/// Computed by binary search on II with a Bellman-Ford-style positive-
/// cycle detection on edge weights `delay − II · distance`. Returns 1
/// for recurrence-free graphs.
pub fn rec_mii(g: &DepGraph) -> u32 {
    if !g.has_recurrence() {
        return 1;
    }
    // Upper bound: sum of positive delays is always feasible.
    let hi: i64 = g
        .edges()
        .iter()
        .map(|e| i64::from(e.delay.max(0)))
        .sum::<i64>()
        .max(1);
    let mut lo = 1i64;
    let mut hi = hi;
    while lo < hi {
        let mid = (lo + hi) / 2;
        if has_positive_cycle(g, mid) {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    lo as u32
}

/// Longest-path relaxation: true iff some circuit has positive weight
/// under `w(e) = delay − ii · distance`.
fn has_positive_cycle(g: &DepGraph, ii: i64) -> bool {
    let n = g.num_nodes();
    let mut dist = vec![0i64; n];
    for round in 0..=n {
        let mut changed = false;
        for e in g.edges() {
            let w = i64::from(e.delay) - ii * i64::from(e.distance);
            let cand = dist[e.from.index()] + w;
            if cand > dist[e.to.index()] {
                dist[e.to.index()] = cand;
                changed = true;
            }
        }
        if !changed {
            return false;
        }
        if round == n {
            return true; // still relaxing after n rounds ⇒ positive cycle
        }
    }
    false
}

/// The minimum initiation interval: `max(ResMII, RecMII)`.
pub fn mii(g: &DepGraph, m: &MachineDescription) -> u32 {
    res_mii(g, m).max(rec_mii(g))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{DepGraph, DepKind};
    use rmd_machine::MachineBuilder;

    fn machine() -> MachineDescription {
        let mut b = MachineBuilder::new("m");
        let alu = b.resource("alu");
        let bus = b.resource("bus");
        b.operation("add").usage(alu, 0).usage(bus, 1).finish();
        b.operation("long").usage(alu, 0).usage(alu, 3).finish();
        b.build().expect("test setup")
    }

    #[test]
    fn res_mii_counts_contended_resource() {
        let m = machine();
        let add = m.op_by_name("add").expect("test setup");
        let mut g = DepGraph::new();
        for _ in 0..3 {
            g.add_node(add);
        }
        // 3 alu usages, 3 bus usages -> ResMII 3.
        assert_eq!(res_mii(&g, &m), 3);
    }

    #[test]
    fn res_mii_respects_self_overlap() {
        let m = machine();
        let long = m.op_by_name("long").expect("test setup");
        let mut g = DepGraph::new();
        g.add_node(long);
        // `long` uses alu at cycles 0 and 3: II=1 and II=3 collapse them;
        // II=2 is the smallest with 0 % ii != 3 % ii.
        assert_eq!(res_mii(&g, &m), 2);
    }

    #[test]
    fn rec_mii_of_simple_circuit() {
        let m = machine();
        let add = m.op_by_name("add").expect("test setup");
        let mut g = DepGraph::new();
        let a = g.add_node(add);
        let b = g.add_node(add);
        g.add_edge(a, b, 3, 0, DepKind::Flow);
        g.add_edge(b, a, 2, 1, DepKind::Flow);
        // Circuit: delay 5, distance 1 -> RecMII 5.
        assert_eq!(rec_mii(&g), 5);
        assert_eq!(mii(&g, &m), 5);
    }

    #[test]
    fn rec_mii_takes_worst_circuit() {
        let m = machine();
        let add = m.op_by_name("add").expect("test setup");
        let mut g = DepGraph::new();
        let a = g.add_node(add);
        let b = g.add_node(add);
        let c = g.add_node(add);
        g.add_edge(a, b, 1, 0, DepKind::Flow);
        g.add_edge(b, a, 1, 1, DepKind::Flow); // ratio 2
        g.add_edge(a, c, 4, 0, DepKind::Flow);
        g.add_edge(c, a, 4, 2, DepKind::Flow); // ratio 8/2 = 4
        assert_eq!(rec_mii(&g), 4);
    }

    #[test]
    fn acyclic_graph_has_rec_mii_one() {
        let m = machine();
        let add = m.op_by_name("add").expect("test setup");
        let mut g = DepGraph::new();
        let a = g.add_node(add);
        let b = g.add_node(add);
        g.add_edge(a, b, 10, 0, DepKind::Flow);
        assert_eq!(rec_mii(&g), 1);
        assert_eq!(mii(&g, &m), 2); // resource bound dominates
    }
}
