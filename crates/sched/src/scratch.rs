//! Reusable scheduling scratch state.
//!
//! The iterative modulo scheduler's per-attempt working set — height
//! priorities, partial-schedule vectors, the ready queue, eviction
//! buffers, and (on the cached bitvector path) the reservation-table
//! module itself — is sized by the loop being scheduled. A suite run
//! schedules thousands of loops back to back, and a serve daemon
//! schedules for hours; reallocating that working set per loop is pure
//! overhead. [`SchedScratch`] owns all of it so scheduling loop N+1
//! reuses every buffer loop N already sized: in steady state (a loop
//! shape and II the scratch has seen before) a schedule performs **zero
//! heap allocations**, a property pinned by the counting-allocator test
//! in `tests/scratch_alloc.rs`.
//!
//! Scratch never changes results: schedules, statistics, and work
//! counters are byte-identical with or without it (the buffers are
//! cleared and re-filled exactly as a fresh allocation would be). One
//! scratch per worker thread is the intended shape — the parallel suite
//! runner threads one through each worker's state, and the serial path
//! uses one for the whole run so the comparison stays honest.

use rmd_machine::OpId;
use rmd_query::{ModuloBitvecModule, OpInstance};
use std::collections::BinaryHeap;

use crate::ims::ImsResult;

/// Reusable buffers for [`IterativeModuloScheduler`] attempts; see the
/// module docs. Create one per worker thread with
/// [`new`](Self::new) and pass it to the `*_scratch` scheduling entry
/// points; [`recycle`](Self::recycle) returns a consumed result's
/// vectors to the pool so even the output side allocates nothing in
/// steady state.
///
/// [`IterativeModuloScheduler`]: crate::IterativeModuloScheduler
#[derive(Debug, Default)]
pub struct SchedScratch {
    /// Height-based priority per node (Rau's HeightR).
    pub(crate) height: Vec<i64>,
    /// Partial schedule: issue time per node, `None` while unscheduled.
    pub(crate) time: Vec<Option<u32>>,
    /// Previous placement per node, for Rau's forced-placement rule.
    pub(crate) prev_time: Vec<Option<u32>>,
    /// The operation currently placed per node (alternatives may differ
    /// from the graph's base op).
    pub(crate) node_ops: Vec<OpId>,
    /// Whether each node has a live entry in `queue`.
    pub(crate) queued: Vec<bool>,
    /// Max-heap on `(height, Reverse(node id))`; cleared per attempt.
    pub(crate) queue: BinaryHeap<(i64, core::cmp::Reverse<u32>)>,
    /// Eviction victims of the latest `assign_free_into`.
    pub(crate) evicted: Vec<OpInstance>,
    /// The reservation-table module reused across cached-bitvec
    /// attempts (words, owner table, and registry keep their capacity).
    pub(crate) module: Option<ModuloBitvecModule>,
    /// Pools of returned result vectors (see [`recycle`](Self::recycle)).
    pub(crate) pool_times: Vec<Vec<u32>>,
    pub(crate) pool_ops: Vec<Vec<OpId>>,
    pub(crate) pool_ratios: Vec<Vec<f64>>,
}

impl SchedScratch {
    /// An empty scratch; buffers grow to fit the loops scheduled
    /// through it and are then reused.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the heap-owning vectors of a consumed [`ImsResult`] to
    /// the scratch's pools, so the next schedule's outputs are built in
    /// recycled capacity instead of fresh allocations. Purely an
    /// allocation optimization — results are value-identical whether or
    /// not callers recycle.
    pub fn recycle(&mut self, r: ImsResult) {
        self.pool_times.push(r.times);
        self.pool_ops.push(r.chosen);
        self.pool_ratios.push(r.per_attempt_ratio);
    }

    /// Returns just an op vector (e.g. a result's `chosen` field) to
    /// the pool — for callers that keep the other result vectors alive
    /// (the bench runner stores `times` in its per-loop record but
    /// drops `chosen`).
    pub fn recycle_ops(&mut self, ops: Vec<OpId>) {
        self.pool_ops.push(ops);
    }

    /// A cleared `Vec<u32>` from the pool (or a fresh one).
    pub(crate) fn take_times(&mut self) -> Vec<u32> {
        let mut v = self.pool_times.pop().unwrap_or_default();
        v.clear();
        v
    }

    /// A cleared `Vec<OpId>` from the pool (or a fresh one).
    pub(crate) fn take_ops(&mut self) -> Vec<OpId> {
        let mut v = self.pool_ops.pop().unwrap_or_default();
        v.clear();
        v
    }

    /// A cleared `Vec<f64>` from the pool (or a fresh one).
    pub(crate) fn take_ratios(&mut self) -> Vec<f64> {
        let mut v = self.pool_ratios.pop().unwrap_or_default();
        v.clear();
        v
    }
}
