//! Independent schedule validation.
//!
//! Validation deliberately bypasses the query module: it re-simulates
//! the schedule's resource usage directly from reservation tables, so a
//! schedule produced with a *reduced* description can be validated
//! against the *original* one — the end-to-end form of the paper's
//! equivalence claim.

use crate::graph::DepGraph;
use crate::ims::ImsResult;
use crate::list::ListResult;
use core::fmt;
use rmd_machine::MachineDescription;
use std::collections::HashMap;

/// A witness that a schedule is invalid.
#[derive(Clone, PartialEq, Eq, Debug)]
#[non_exhaustive]
pub enum ScheduleError {
    /// A dependence `from → to` is violated.
    DependenceViolated {
        /// Source node index.
        from: usize,
        /// Sink node index.
        to: usize,
        /// Required minimum issue time of `to`.
        required: i64,
        /// Actual issue time of `to`.
        actual: i64,
    },
    /// Two nodes reserve the same resource slot.
    ResourceConflict {
        /// First node index.
        a: usize,
        /// Second node index.
        b: usize,
        /// Resource index.
        resource: u32,
        /// The contended slot (modulo slot for modulo schedules,
        /// absolute cycle otherwise).
        slot: u32,
    },
}

impl fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScheduleError::DependenceViolated {
                from,
                to,
                required,
                actual,
            } => write!(
                f,
                "dependence n{from} -> n{to} violated: t = {actual} < required {required}"
            ),
            ScheduleError::ResourceConflict { a, b, resource, slot } => write!(
                f,
                "nodes n{a} and n{b} both reserve resource r{resource} in slot {slot}"
            ),
        }
    }
}

impl std::error::Error for ScheduleError {}

/// Validates a modulo schedule against `machine` (typically the
/// *original*, unreduced description).
///
/// # Errors
///
/// Returns the first [`ScheduleError`] found.
pub fn validate(
    g: &DepGraph,
    machine: &MachineDescription,
    result: &ImsResult,
) -> Result<(), ScheduleError> {
    let ii = i64::from(result.ii);
    // Dependences: t(to) ≥ t(from) + delay − II · distance.
    for e in g.edges() {
        let tf = i64::from(result.times[e.from.index()]);
        let tt = i64::from(result.times[e.to.index()]);
        let required = tf + i64::from(e.delay) - ii * i64::from(e.distance);
        if tt < required {
            return Err(ScheduleError::DependenceViolated {
                from: e.from.index(),
                to: e.to.index(),
                required,
                actual: tt,
            });
        }
    }
    // Resources: every (resource, modulo slot) reserved at most once.
    // Alternatives: the table that matters is the *chosen* operation's.
    let mut taken: HashMap<(u32, u32), usize> = HashMap::new();
    for v in g.nodes() {
        let t = result.times[v.index()];
        let table = machine.operation(result.chosen[v.index()]).table();
        for u in table.usages() {
            let slot = ((u64::from(t) + u64::from(u.cycle)) % result.ii as u64) as u32;
            if let Some(&other) = taken.get(&(u.resource.0, slot)) {
                return Err(ScheduleError::ResourceConflict {
                    a: other,
                    b: v.index(),
                    resource: u.resource.0,
                    slot,
                });
            }
            taken.insert((u.resource.0, slot), v.index());
        }
    }
    Ok(())
}

/// Validates an acyclic (list) schedule against `machine`: dependences
/// with distance 0 and absolute-cycle resource exclusivity, including
/// the dangling boundary reservations.
///
/// # Errors
///
/// Returns the first [`ScheduleError`] found.
pub fn validate_list(
    g: &DepGraph,
    machine: &MachineDescription,
    result: &ListResult,
) -> Result<(), ScheduleError> {
    for e in g.edges() {
        debug_assert_eq!(e.distance, 0, "list schedules are acyclic");
        let tf = i64::from(result.times[e.from.index()]);
        let tt = i64::from(result.times[e.to.index()]);
        let required = tf + i64::from(e.delay);
        if tt < required {
            return Err(ScheduleError::DependenceViolated {
                from: e.from.index(),
                to: e.to.index(),
                required,
                actual: tt,
            });
        }
    }
    let mut taken: HashMap<(u32, i64), usize> = HashMap::new();
    let mut reserve = |node: usize,
                       op: rmd_machine::OpId,
                       t: i64|
     -> Result<(), ScheduleError> {
        let table = machine.operation(op).table();
        for u in table.usages() {
            let slot = t + i64::from(u.cycle);
            if let Some(&other) = taken.get(&(u.resource.0, slot)) {
                return Err(ScheduleError::ResourceConflict {
                    a: other,
                    b: node,
                    resource: u.resource.0,
                    slot: slot.max(0) as u32,
                });
            }
            taken.insert((u.resource.0, slot), node);
        }
        Ok(())
    };
    for (i, b) in result.boundary.iter().enumerate() {
        // Boundary ops use pseudo node indices beyond the graph.
        reserve(g.num_nodes() + i, b.op, i64::from(b.issue_cycle))?;
    }
    for v in g.nodes() {
        reserve(v.index(), g.op(v), i64::from(result.times[v.index()]))?;
    }
    Ok(())
}
