//! Zero-allocation steady-state scheduling guard.
//!
//! The PR-4 counting-allocator guard pins the *query* hot path
//! (`check`) at zero allocations; this extends the guard one level up:
//! scheduling the same loop a second time through a warm
//! [`SchedScratch`] + [`ModuloMaskCache`] pair must perform **zero**
//! heap allocations — every buffer (heights, partial schedule, ready
//! queue, eviction list, reservation-table words/owner/registry, and
//! the result vectors via [`SchedScratch::recycle`]) was sized by the
//! first run and is reused in place.

use rmd_machine::models::cydra5_subset;
use rmd_machine::MachineDescription;
use rmd_query::{ModuloMaskCache, WordLayout};
use rmd_sched::{
    DepGraph, DepKind, ImsConfig, IterativeModuloScheduler, Representation, SchedScratch,
};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn allocations_during(body: impl FnOnce()) -> u64 {
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    body();
    ALLOCATIONS.load(Ordering::Relaxed) - before
}

fn chain(m: &MachineDescription, names: &[&str], delay: i32) -> DepGraph {
    let mut g = DepGraph::new();
    let nodes: Vec<_> = names
        .iter()
        .map(|n| g.add_node(m.op_by_name(n).expect("test setup")))
        .collect();
    for w in nodes.windows(2) {
        g.add_edge(w[0], w[1], delay, 0, DepKind::Flow);
    }
    g
}

#[test]
fn warm_scratch_schedules_without_allocating() {
    assert!(
        !rmd_obs::is_enabled(),
        "tracing must be off for the allocation guard"
    );
    let m = cydra5_subset();
    let layout = WordLayout::widest(64, m.num_resources());
    let repr = Representation::Bitvec(layout);
    let mut cache = ModuloMaskCache::new(&m, layout);
    let mut scratch = SchedScratch::new();
    let ims = IterativeModuloScheduler::new(ImsConfig::default());

    // Shapes covering the interesting paths: a latency chain (window
    // slot search), resource pressure (forced placement, assign&free
    // eviction, the owner-table transition), and a recurrence (II
    // escalation from RecMII).
    let fadd = m.op_by_name("fadd").expect("test setup");
    let mut pressured = DepGraph::new();
    for _ in 0..6 {
        pressured.add_node(fadd);
    }
    let mut recurrence = DepGraph::new();
    let a = recurrence.add_node(fadd);
    let b = recurrence.add_node(fadd);
    recurrence.add_edge(a, b, 7, 0, DepKind::Flow);
    recurrence.add_edge(b, a, 7, 1, DepKind::Flow);
    let graphs = [
        chain(&m, &["load.w.0", "fadd", "store.w.0"], 8),
        pressured,
        recurrence,
    ];

    for (i, g) in graphs.iter().enumerate() {
        let mii = rmd_sched::mii::mii(g, &m);
        // First run: sizes every buffer (and expands this II's masks).
        let warm = ims
            .schedule_with_mii_cached_scratch(g, &m, repr, mii, &mut cache, &mut scratch)
            .expect("test setup");
        let expected_times = warm.times.clone();
        scratch.recycle(warm);
        // Second identical run: zero heap allocations.
        let mut times_match = false;
        let allocs = allocations_during(|| {
            let r = ims
                .schedule_with_mii_cached_scratch(g, &m, repr, mii, &mut cache, &mut scratch)
                .expect("test setup");
            times_match = r.times == expected_times;
            scratch.recycle(r);
        });
        assert!(times_match, "graph {i}: warm run changed the schedule");
        assert_eq!(allocs, 0, "graph {i}: warm run allocated");
    }
}

#[test]
fn cold_scratch_allocates_then_settles() {
    // Sanity check on the guard itself: the first run through a cold
    // scratch must be observed allocating (otherwise the zero assert
    // above would be vacuous).
    let m = cydra5_subset();
    let layout = WordLayout::widest(64, m.num_resources());
    let repr = Representation::Bitvec(layout);
    let mut cache = ModuloMaskCache::new(&m, layout);
    let mut scratch = SchedScratch::new();
    let ims = IterativeModuloScheduler::new(ImsConfig::default());
    let g = chain(&m, &["load.w.0", "fadd", "store.w.0"], 8);
    let mii = rmd_sched::mii::mii(&g, &m);
    let allocs = allocations_during(|| {
        let r = ims
            .schedule_with_mii_cached_scratch(&g, &m, repr, mii, &mut cache, &mut scratch)
            .expect("test setup");
        scratch.recycle(r);
    });
    assert!(allocs > 0, "cold run must allocate; the counter works");
}
