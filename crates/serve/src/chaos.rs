//! Deterministic fault injection for the daemon (`--chaos <seed>`).
//!
//! Reuses the `rmd-fault` SplitMix64 generator so a given seed yields
//! the same action sequence on every run: the soak test can replay the
//! exact mix of corrupted frames, slow handlers, and mid-request panics
//! and assert every recovery path fired.

use rmd_fault::rng::mix_seed;
use rmd_fault::SplitMix64;

/// What the chaos layer does to one request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ChaosAction {
    /// Leave the request alone.
    None,
    /// Corrupt the frame before parsing (truncate mid-JSON), so the
    /// malformed-frame recovery path runs.
    CorruptFrame,
    /// Sleep this many milliseconds inside the handler, so deadline
    /// enforcement runs.
    SlowMs(u64),
    /// Panic inside the handler after state has been resolved, so
    /// panic isolation and cache quarantine run.
    Panic,
}

/// A seeded chaos plan: a pure function from request index to action.
#[derive(Clone, Copy, Debug)]
pub struct Chaos {
    seed: u64,
}

/// Domain-separation tag for chaos streams (`mix_seed` base).
const CHAOS_TAG: u64 = 0x5EF7_E0C4;

impl Chaos {
    /// A plan for `seed`.
    pub fn new(seed: u64) -> Self {
        Chaos { seed }
    }

    /// The injected action for the `index`-th admitted request.
    /// Roughly 1 in 10 requests is corrupted, 1 in 10 slowed, and
    /// 1 in 10 panics; the rest pass through untouched.
    pub fn action(&self, index: u64) -> ChaosAction {
        let mut rng = SplitMix64::new(mix_seed(self.seed, CHAOS_TAG, index));
        match rng.below(10) {
            0 => ChaosAction::CorruptFrame,
            1 => ChaosAction::SlowMs(5 + rng.below(20)),
            2 => ChaosAction::Panic,
            _ => ChaosAction::None,
        }
    }

    /// Truncates a frame to its first half, yielding (for any frame of
    /// more than two bytes) JSON that no longer parses.
    pub fn corrupt(line: &str) -> String {
        let cut = line.len() / 2;
        let mut cut = cut.min(line.len());
        // Stay on a char boundary so the result is still a &str.
        while cut > 0 && !line.is_char_boundary(cut) {
            cut -= 1;
        }
        line[..cut].to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_mixed() {
        let c = Chaos::new(0xC5);
        let first: Vec<ChaosAction> = (0..200).map(|i| c.action(i)).collect();
        let again: Vec<ChaosAction> = (0..200).map(|i| c.action(i)).collect();
        assert_eq!(first, again);
        assert!(first.contains(&ChaosAction::CorruptFrame));
        assert!(first.contains(&ChaosAction::Panic));
        assert!(first.iter().any(|a| matches!(a, ChaosAction::SlowMs(_))));
        assert!(first.contains(&ChaosAction::None));
        let other: Vec<ChaosAction> = (0..200).map(|i| Chaos::new(0xC6).action(i)).collect();
        assert_ne!(first, other, "different seeds must differ");
    }

    #[test]
    fn corrupt_truncates_json() {
        let line = r#"{"type":"status","id":123456}"#;
        let bad = Chaos::corrupt(line);
        assert!(serde_json::from_str(&bad).is_err());
        assert!(Chaos::corrupt("ab").len() <= 1);
    }
}
