//! The daemon loop: framing, admission control, graceful shutdown.
//!
//! One reader thread turns the transport (stdin or a unix-socket
//! connection) into lines and offers them to a *bounded* admission
//! queue — when the queue is full the request is shed immediately with
//! a `429`-style `overloaded` reply carrying a retry-after hint, so a
//! slow scheduler never translates into unbounded daemon memory. The
//! processor thread (the caller) drains the queue through
//! [`ServeEngine::handle_line`] and writes replies in admission order.
//!
//! Shutdown is graceful on SIGTERM, EOF, or a `shutdown` request:
//! everything already admitted is drained and answered, frames read
//! after the flag flips get a typed `shutting_down` reply, and rmd-obs
//! metrics are flushed before the process exits.

use crate::engine::{EngineConfig, ServeEngine};
use crate::error::ServeError;
use crate::signal;
use rmd_core::RmdError;
use std::io::{self, BufRead, BufReader, Write};
use std::os::unix::net::UnixListener;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, RecvTimeoutError, TrySendError};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// A shareable, lockable reply sink.
pub type SharedWriter = Arc<Mutex<Box<dyn Write + Send>>>;

/// Daemon configuration beyond the engine's own knobs.
#[derive(Clone, Debug)]
pub struct ServeOptions {
    /// Serve a unix socket at this path instead of stdin/stdout.
    pub socket: Option<PathBuf>,
    /// Admission-queue depth; requests beyond it are shed.
    pub queue_cap: usize,
    /// Retry-after hint carried by `overloaded` replies, milliseconds.
    pub retry_after_ms: u64,
    /// Where to write the flushed metrics JSON (stderr when `None`).
    pub metrics_path: Option<PathBuf>,
    /// Emit a metrics-snapshot JSONL line every N requests; `0`
    /// disables. Snapshots are non-destructive ([`ServeEngine::
    /// metrics_snapshot`]) and never pause request processing. With a
    /// `metrics_path` the lines are *appended* (and the final drain
    /// flush appends too, keeping the file JSONL); without one they go
    /// to stderr.
    pub metrics_every: u64,
    /// Log a structured JSONL record to stderr for every request whose
    /// latency reaches this many milliseconds; `0` disables.
    pub slow_ms: u64,
    /// Engine knobs (deadlines, caps, chaos).
    pub engine: EngineConfig,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            socket: None,
            queue_cap: 64,
            retry_after_ms: 50,
            metrics_path: None,
            metrics_every: 0,
            slow_ms: 0,
            engine: EngineConfig::default(),
        }
    }
}

/// What a daemon run did, for the CLI's closing stderr line.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServeSummary {
    /// Frames admitted and answered (success or typed error).
    pub requests: u64,
    /// Successful replies.
    pub ok: u64,
    /// Typed error replies.
    pub errors: u64,
    /// Requests shed by the admission queue.
    pub shed: u64,
    /// Cache entries quarantined after a panicking request.
    pub quarantined: u64,
}

/// Poll interval for the shutdown flag while the queue is idle.
const IDLE_POLL: Duration = Duration::from_millis(25);

fn write_line(writer: &SharedWriter, line: &str) -> bool {
    let mut w = match writer.lock() {
        Ok(w) => w,
        // A writer poisoned by a panicking peer thread still holds a
        // usable sink; recover it rather than dying.
        Err(poisoned) => poisoned.into_inner(),
    };
    w.write_all(line.as_bytes())
        .and_then(|()| w.write_all(b"\n"))
        .and_then(|()| w.flush())
        .is_ok()
}

/// Serves one framed stream until EOF or shutdown. The reader runs on
/// its own thread feeding the bounded admission queue; this thread
/// processes and replies in admission order. Public so tests and the
/// load driver can run the full admission pipeline over in-memory
/// streams.
pub fn serve_stream<R>(reader: R, writer: SharedWriter, engine: &mut ServeEngine, opts: &ServeOptions)
where
    R: BufRead + Send + 'static,
{
    let (tx, rx) = sync_channel::<(String, Instant)>(opts.queue_cap.max(1));
    let shed = Arc::new(AtomicU64::new(0));
    let reader_writer = Arc::clone(&writer);
    let reader_shed = Arc::clone(&shed);
    let retry_after_ms = opts.retry_after_ms;
    let reader_thread = std::thread::spawn(move || {
        for line in reader.lines() {
            let Ok(line) = line else { break };
            if line.trim().is_empty() {
                continue;
            }
            if signal::sigterm_received() {
                // Reject new work during the drain, but keep reading so
                // pipelined clients get an answer for every frame.
                write_line(&reader_writer, &ServeError::ShuttingDown.to_reply(None));
                continue;
            }
            match tx.try_send((line, Instant::now())) {
                Ok(()) => {}
                Err(TrySendError::Full(_)) => {
                    reader_shed.fetch_add(1, Ordering::Relaxed);
                    let e = ServeError::Overloaded { retry_after_ms };
                    if !write_line(&reader_writer, &e.to_reply(None)) {
                        break;
                    }
                }
                Err(TrySendError::Disconnected(_)) => break,
            }
        }
    });

    loop {
        match rx.recv_timeout(IDLE_POLL) {
            Ok((line, at)) => {
                let (reply, shutdown) = engine.handle_line(&line, at);
                after_request(engine, opts);
                if !write_line(&writer, &reply) {
                    break;
                }
                if shutdown {
                    signal::set_shutdown(true);
                }
            }
            Err(RecvTimeoutError::Timeout) => {
                if signal::sigterm_received() {
                    // Drain everything already admitted, then stop.
                    while let Ok((line, at)) = rx.try_recv() {
                        let (reply, _) = engine.handle_line(&line, at);
                        after_request(engine, opts);
                        write_line(&writer, &reply);
                    }
                    break;
                }
            }
            Err(RecvTimeoutError::Disconnected) => break,
        }
    }
    engine.record_shed(shed.load(Ordering::Relaxed));
    // The reader may be blocked on the transport; socket mode unblocks
    // it by shutting the stream down, stdio mode lets process exit
    // reap it. Join only if it already finished.
    if reader_thread.is_finished() {
        let _ = reader_thread.join();
    }
}

/// Per-request observability: publishes any flight-recorder dumps the
/// request tripped, logs it when it was slow, and appends a periodic
/// metrics snapshot every `metrics_every` requests. Runs on the
/// processor thread between requests — no pause, no locks.
fn after_request(engine: &mut ServeEngine, opts: &ServeOptions) {
    for dump in engine.take_flight_dumps() {
        eprintln!("rmd serve: flight {dump}");
    }
    if opts.slow_ms > 0 {
        if let Some(entry) = engine.last_flight_entry() {
            if entry.latency_ns / 1_000_000 >= opts.slow_ms {
                eprintln!("{}", render_slow_record(entry, opts.slow_ms));
            }
        }
    }
    if opts.metrics_every > 0 && engine.counter("serve.requests") % opts.metrics_every == 0 {
        emit_metrics_line(engine, opts);
    }
}

/// One structured JSONL record for a request over the `--slow-ms`
/// threshold.
fn render_slow_record(entry: &crate::flight::FlightEntry, slow_ms: u64) -> String {
    use rmd_obs::export::push_json_string;
    let mut out = String::with_capacity(128);
    out.push_str("{\"slow_request\":true,\"req\":");
    out.push_str(&entry.req.to_string());
    out.push_str(",\"id\":");
    out.push_str(entry.id.as_deref().unwrap_or("null"));
    out.push_str(",\"kind\":");
    push_json_string(&mut out, entry.kind);
    out.push_str(",\"latency_ms\":");
    out.push_str(&(entry.latency_ns / 1_000_000).to_string());
    out.push_str(",\"threshold_ms\":");
    out.push_str(&slow_ms.to_string());
    out.push_str(",\"outcome\":");
    push_json_string(&mut out, &entry.outcome);
    out.push('}');
    out
}

/// Appends one non-destructive metrics-snapshot line to the metrics
/// path (or stderr).
fn emit_metrics_line(engine: &ServeEngine, opts: &ServeOptions) {
    let json = rmd_obs::export::registry_to_json(&engine.metrics_snapshot());
    match &opts.metrics_path {
        Some(path) => {
            let appended = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(path)
                .and_then(|mut f| {
                    use std::io::Write as _;
                    writeln!(f, "{json}")
                });
            if let Err(e) = appended {
                eprintln!("rmd serve: cannot write metrics to {}: {e}", path.display());
                eprintln!("rmd serve: metrics {json}");
            }
        }
        None => eprintln!("rmd serve: metrics {json}"),
    }
}

fn flush_metrics(engine: &mut ServeEngine, opts: &ServeOptions) {
    let json = engine.flush_metrics();
    match &opts.metrics_path {
        Some(path) => {
            // With periodic emission active the file is JSONL history;
            // append the final flush instead of truncating it away.
            let written = if opts.metrics_every > 0 {
                std::fs::OpenOptions::new()
                    .create(true)
                    .append(true)
                    .open(path)
                    .and_then(|mut f| {
                        use std::io::Write as _;
                        writeln!(f, "{json}")
                    })
            } else {
                std::fs::write(path, format!("{json}\n"))
            };
            if let Err(e) = written {
                eprintln!("rmd serve: cannot write metrics to {}: {e}", path.display());
                eprintln!("rmd serve: metrics {json}");
            }
        }
        None => eprintln!("rmd serve: metrics {json}"),
    }
}

fn summary_of(engine: &ServeEngine) -> ServeSummary {
    ServeSummary {
        requests: engine.counter("serve.requests"),
        ok: engine.counter("serve.ok"),
        errors: engine.counter("serve.errors"),
        shed: engine.counter("serve.shed"),
        quarantined: engine.counter("serve.quarantined"),
    }
}

/// Runs the daemon until EOF, SIGTERM, or a `shutdown` request, then
/// drains, flushes metrics, and returns the run summary.
///
/// # Errors
///
/// Only transport setup can fail (binding the unix socket); everything
/// after that is answered in-band with typed error replies.
pub fn run(opts: &ServeOptions) -> Result<ServeSummary, ServeError> {
    signal::install_sigterm_handler();
    signal::set_shutdown(false);
    let mut engine = ServeEngine::new(opts.engine.clone());
    match &opts.socket {
        None => {
            let writer: SharedWriter = Arc::new(Mutex::new(Box::new(io::stdout())));
            serve_stream(BufReader::new(io::stdin()), writer, &mut engine, opts);
        }
        Some(path) => serve_socket(path, &mut engine, opts)?,
    }
    // The drain is a black-box moment too: dump the last requests so a
    // post-mortem can see what the daemon was doing when it stopped.
    engine.trip_flight("drain");
    for dump in engine.take_flight_dumps() {
        eprintln!("rmd serve: flight {dump}");
    }
    flush_metrics(&mut engine, opts);
    let s = summary_of(&engine);
    eprintln!(
        "rmd serve: drained; requests={} ok={} errors={} shed={} quarantined={}",
        s.requests, s.ok, s.errors, s.shed, s.quarantined
    );
    Ok(s)
}

fn serve_socket(
    path: &PathBuf,
    engine: &mut ServeEngine,
    opts: &ServeOptions,
) -> Result<(), ServeError> {
    // A stale socket file from a crashed daemon would make bind fail;
    // connect() can't succeed on it either, so replacing it is safe.
    if path.exists() {
        let _ = std::fs::remove_file(path);
    }
    let listener = UnixListener::bind(path)
        .map_err(|e| ServeError::Rmd(RmdError::Io(format!("bind {}: {e}", path.display()))))?;
    listener
        .set_nonblocking(true)
        .map_err(|e| ServeError::Rmd(RmdError::Io(format!("socket setup: {e}"))))?;
    loop {
        if signal::sigterm_received() {
            break;
        }
        match listener.accept() {
            Ok((stream, _addr)) => {
                let Ok(()) = stream.set_nonblocking(false) else {
                    continue;
                };
                let (Ok(read_half), Ok(write_half)) = (stream.try_clone(), stream.try_clone())
                else {
                    continue;
                };
                let writer: SharedWriter = Arc::new(Mutex::new(Box::new(write_half)));
                serve_stream(BufReader::new(read_half), writer, engine, opts);
                // Unblock the reader thread if it is still parked on
                // this connection, then move on (or shut down).
                let _ = stream.shutdown(std::net::Shutdown::Both);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => std::thread::sleep(IDLE_POLL),
            Err(e) => {
                // Transient accept failures must not kill the daemon.
                eprintln!("rmd serve: accept: {e}");
                std::thread::sleep(IDLE_POLL);
            }
        }
    }
    let _ = std::fs::remove_file(path);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    /// Serializes daemon tests: the shutdown flag is process-global.
    static FLAG_LOCK: Mutex<()> = Mutex::new(());

    #[derive(Clone, Default)]
    struct SharedBuf(Arc<Mutex<Vec<u8>>>);

    impl Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    fn run_lines(lines: &str, opts: &ServeOptions) -> (Vec<serde_json::Value>, ServeSummary) {
        let _g = FLAG_LOCK.lock().unwrap_or_else(|p| p.into_inner());
        signal::set_shutdown(false);
        let mut engine = ServeEngine::new(opts.engine.clone());
        let buf = SharedBuf::default();
        let writer: SharedWriter = Arc::new(Mutex::new(Box::new(buf.clone())));
        serve_stream(
            Cursor::new(lines.as_bytes().to_vec()),
            writer,
            &mut engine,
            opts,
        );
        let out = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
        let replies = out
            .lines()
            .map(|l| serde_json::from_str(l).unwrap_or_else(|e| panic!("{l}: {e}")))
            .collect();
        signal::set_shutdown(false);
        (replies, summary_of(&engine))
    }

    #[test]
    fn pipelined_frames_answered_in_order() {
        let lines = concat!(
            r#"{"type":"machine","model":"fig1","id":0}"#, "\n",
            r#"{"type":"status","id":1}"#, "\n",
            r#"{"type":"nope","id":2}"#, "\n",
            r#"{"type":"status","id":3}"#, "\n",
        );
        let (replies, summary) = run_lines(lines, &ServeOptions::default());
        assert_eq!(replies.len(), 4);
        for (i, r) in replies.iter().enumerate() {
            assert_eq!(
                r.get("id").and_then(|v| v.as_u64()),
                Some(i as u64),
                "admission order must be preserved"
            );
        }
        assert_eq!(replies[2].get("ok").and_then(|v| v.as_bool()), Some(false));
        assert_eq!(summary.requests, 4);
        assert_eq!(summary.ok, 3);
        assert_eq!(summary.errors, 1);
    }

    #[test]
    fn shutdown_request_drains_and_exits() {
        let lines = concat!(
            r#"{"type":"status","id":0}"#, "\n",
            r#"{"type":"shutdown","id":1}"#, "\n",
        );
        let (replies, _) = run_lines(lines, &ServeOptions::default());
        // Both frames were admitted before the shutdown reply flipped
        // the flag, so both are answered; the stream then ends.
        assert_eq!(replies.len(), 2);
        assert_eq!(replies[1].get("draining").and_then(|v| v.as_bool()), Some(true));
    }

    #[test]
    fn eof_ends_the_stream() {
        let (replies, summary) = run_lines("", &ServeOptions::default());
        assert!(replies.is_empty());
        assert_eq!(summary, ServeSummary::default());
    }

    #[test]
    fn metrics_every_appends_parseable_snapshots() {
        let path = std::env::temp_dir().join(format!(
            "rmd-serve-metrics-{}-{:?}.jsonl",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_file(&path);
        let opts = ServeOptions {
            metrics_path: Some(path.clone()),
            metrics_every: 2,
            ..ServeOptions::default()
        };
        let lines = concat!(
            r#"{"type":"status","id":0}"#, "\n",
            r#"{"type":"status","id":1}"#, "\n",
            r#"{"type":"status","id":2}"#, "\n",
            r#"{"type":"status","id":3}"#, "\n",
            r#"{"type":"status","id":4}"#, "\n",
        );
        let (replies, _) = run_lines(lines, &opts);
        assert_eq!(replies.len(), 5);
        let text = std::fs::read_to_string(&path).expect("metrics file");
        let snaps: Vec<serde_json::Value> = text
            .lines()
            .map(|l| serde_json::from_str(l).unwrap_or_else(|e| panic!("{l}: {e}")))
            .collect();
        // 5 requests at every-2 → snapshots after requests 2 and 4.
        assert_eq!(snaps.len(), 2, "{text}");
        let requests = |v: &serde_json::Value| {
            v.get("counters")
                .and_then(|c| c.get("serve.requests"))
                .and_then(|n| n.as_u64())
                .unwrap()
        };
        assert_eq!(requests(&snaps[0]), 2);
        assert_eq!(requests(&snaps[1]), 4);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn slow_record_is_structured_jsonl() {
        let entry = crate::flight::FlightEntry {
            req: 7,
            id: Some("\"a b\"".to_string()),
            kind: "schedule",
            fingerprint: None,
            latency_ns: 12_000_000,
            outcome: "ok".to_string(),
        };
        let line = render_slow_record(&entry, 10);
        let v: serde_json::Value = serde_json::from_str(&line).expect("parses");
        assert_eq!(v.get("slow_request").and_then(|b| b.as_bool()), Some(true));
        assert_eq!(v.get("req").and_then(|n| n.as_u64()), Some(7));
        assert_eq!(v.get("id").and_then(|s| s.as_str()), Some("a b"));
        assert_eq!(v.get("latency_ms").and_then(|n| n.as_u64()), Some(12));
        assert_eq!(v.get("threshold_ms").and_then(|n| n.as_u64()), Some(10));
        assert_eq!(v.get("outcome").and_then(|s| s.as_str()), Some("ok"));
    }
}
