//! The daemon loop: framing, admission control, graceful shutdown.
//!
//! One reader thread turns the transport (stdin or a unix-socket
//! connection) into lines and offers them to a *bounded* admission
//! queue — when the queue is full the request is shed immediately with
//! a `429`-style `overloaded` reply carrying a retry-after hint, so a
//! slow scheduler never translates into unbounded daemon memory. The
//! processor thread (the caller) drains the queue through
//! [`ServeEngine::handle_line`] and writes replies in admission order.
//!
//! Shutdown is graceful on SIGTERM, EOF, or a `shutdown` request:
//! everything already admitted is drained and answered, frames read
//! after the flag flips get a typed `shutting_down` reply, and rmd-obs
//! metrics are flushed before the process exits.

use crate::engine::{EngineConfig, ServeEngine};
use crate::error::ServeError;
use crate::signal;
use rmd_core::RmdError;
use std::io::{self, BufRead, BufReader, Write};
use std::os::unix::net::UnixListener;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, RecvTimeoutError, TrySendError};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// A shareable, lockable reply sink.
pub type SharedWriter = Arc<Mutex<Box<dyn Write + Send>>>;

/// Daemon configuration beyond the engine's own knobs.
#[derive(Clone, Debug)]
pub struct ServeOptions {
    /// Serve a unix socket at this path instead of stdin/stdout.
    pub socket: Option<PathBuf>,
    /// Admission-queue depth; requests beyond it are shed.
    pub queue_cap: usize,
    /// Retry-after hint carried by `overloaded` replies, milliseconds.
    pub retry_after_ms: u64,
    /// Where to write the flushed metrics JSON (stderr when `None`).
    pub metrics_path: Option<PathBuf>,
    /// Engine knobs (deadlines, caps, chaos).
    pub engine: EngineConfig,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            socket: None,
            queue_cap: 64,
            retry_after_ms: 50,
            metrics_path: None,
            engine: EngineConfig::default(),
        }
    }
}

/// What a daemon run did, for the CLI's closing stderr line.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServeSummary {
    /// Frames admitted and answered (success or typed error).
    pub requests: u64,
    /// Successful replies.
    pub ok: u64,
    /// Typed error replies.
    pub errors: u64,
    /// Requests shed by the admission queue.
    pub shed: u64,
    /// Cache entries quarantined after a panicking request.
    pub quarantined: u64,
}

/// Poll interval for the shutdown flag while the queue is idle.
const IDLE_POLL: Duration = Duration::from_millis(25);

fn write_line(writer: &SharedWriter, line: &str) -> bool {
    let mut w = match writer.lock() {
        Ok(w) => w,
        // A writer poisoned by a panicking peer thread still holds a
        // usable sink; recover it rather than dying.
        Err(poisoned) => poisoned.into_inner(),
    };
    w.write_all(line.as_bytes())
        .and_then(|()| w.write_all(b"\n"))
        .and_then(|()| w.flush())
        .is_ok()
}

/// Serves one framed stream until EOF or shutdown. The reader runs on
/// its own thread feeding the bounded admission queue; this thread
/// processes and replies in admission order. Public so tests and the
/// load driver can run the full admission pipeline over in-memory
/// streams.
pub fn serve_stream<R>(reader: R, writer: SharedWriter, engine: &mut ServeEngine, opts: &ServeOptions)
where
    R: BufRead + Send + 'static,
{
    let (tx, rx) = sync_channel::<(String, Instant)>(opts.queue_cap.max(1));
    let shed = Arc::new(AtomicU64::new(0));
    let reader_writer = Arc::clone(&writer);
    let reader_shed = Arc::clone(&shed);
    let retry_after_ms = opts.retry_after_ms;
    let reader_thread = std::thread::spawn(move || {
        for line in reader.lines() {
            let Ok(line) = line else { break };
            if line.trim().is_empty() {
                continue;
            }
            if signal::sigterm_received() {
                // Reject new work during the drain, but keep reading so
                // pipelined clients get an answer for every frame.
                write_line(&reader_writer, &ServeError::ShuttingDown.to_reply(None));
                continue;
            }
            match tx.try_send((line, Instant::now())) {
                Ok(()) => {}
                Err(TrySendError::Full(_)) => {
                    reader_shed.fetch_add(1, Ordering::Relaxed);
                    let e = ServeError::Overloaded { retry_after_ms };
                    if !write_line(&reader_writer, &e.to_reply(None)) {
                        break;
                    }
                }
                Err(TrySendError::Disconnected(_)) => break,
            }
        }
    });

    loop {
        match rx.recv_timeout(IDLE_POLL) {
            Ok((line, at)) => {
                let (reply, shutdown) = engine.handle_line(&line, at);
                if !write_line(&writer, &reply) {
                    break;
                }
                if shutdown {
                    signal::set_shutdown(true);
                }
            }
            Err(RecvTimeoutError::Timeout) => {
                if signal::sigterm_received() {
                    // Drain everything already admitted, then stop.
                    while let Ok((line, at)) = rx.try_recv() {
                        let (reply, _) = engine.handle_line(&line, at);
                        write_line(&writer, &reply);
                    }
                    break;
                }
            }
            Err(RecvTimeoutError::Disconnected) => break,
        }
    }
    engine.record_shed(shed.load(Ordering::Relaxed));
    // The reader may be blocked on the transport; socket mode unblocks
    // it by shutting the stream down, stdio mode lets process exit
    // reap it. Join only if it already finished.
    if reader_thread.is_finished() {
        let _ = reader_thread.join();
    }
}

fn flush_metrics(engine: &mut ServeEngine, opts: &ServeOptions) {
    let json = engine.flush_metrics();
    match &opts.metrics_path {
        Some(path) => {
            if let Err(e) = std::fs::write(path, format!("{json}\n")) {
                eprintln!("rmd serve: cannot write metrics to {}: {e}", path.display());
                eprintln!("rmd serve: metrics {json}");
            }
        }
        None => eprintln!("rmd serve: metrics {json}"),
    }
}

fn summary_of(engine: &ServeEngine) -> ServeSummary {
    ServeSummary {
        requests: engine.counter("serve.requests"),
        ok: engine.counter("serve.ok"),
        errors: engine.counter("serve.errors"),
        shed: engine.counter("serve.shed"),
        quarantined: engine.counter("serve.quarantined"),
    }
}

/// Runs the daemon until EOF, SIGTERM, or a `shutdown` request, then
/// drains, flushes metrics, and returns the run summary.
///
/// # Errors
///
/// Only transport setup can fail (binding the unix socket); everything
/// after that is answered in-band with typed error replies.
pub fn run(opts: &ServeOptions) -> Result<ServeSummary, ServeError> {
    signal::install_sigterm_handler();
    signal::set_shutdown(false);
    let mut engine = ServeEngine::new(opts.engine.clone());
    match &opts.socket {
        None => {
            let writer: SharedWriter = Arc::new(Mutex::new(Box::new(io::stdout())));
            serve_stream(BufReader::new(io::stdin()), writer, &mut engine, opts);
        }
        Some(path) => serve_socket(path, &mut engine, opts)?,
    }
    flush_metrics(&mut engine, opts);
    let s = summary_of(&engine);
    eprintln!(
        "rmd serve: drained; requests={} ok={} errors={} shed={} quarantined={}",
        s.requests, s.ok, s.errors, s.shed, s.quarantined
    );
    Ok(s)
}

fn serve_socket(
    path: &PathBuf,
    engine: &mut ServeEngine,
    opts: &ServeOptions,
) -> Result<(), ServeError> {
    // A stale socket file from a crashed daemon would make bind fail;
    // connect() can't succeed on it either, so replacing it is safe.
    if path.exists() {
        let _ = std::fs::remove_file(path);
    }
    let listener = UnixListener::bind(path)
        .map_err(|e| ServeError::Rmd(RmdError::Io(format!("bind {}: {e}", path.display()))))?;
    listener
        .set_nonblocking(true)
        .map_err(|e| ServeError::Rmd(RmdError::Io(format!("socket setup: {e}"))))?;
    loop {
        if signal::sigterm_received() {
            break;
        }
        match listener.accept() {
            Ok((stream, _addr)) => {
                let Ok(()) = stream.set_nonblocking(false) else {
                    continue;
                };
                let (Ok(read_half), Ok(write_half)) = (stream.try_clone(), stream.try_clone())
                else {
                    continue;
                };
                let writer: SharedWriter = Arc::new(Mutex::new(Box::new(write_half)));
                serve_stream(BufReader::new(read_half), writer, engine, opts);
                // Unblock the reader thread if it is still parked on
                // this connection, then move on (or shut down).
                let _ = stream.shutdown(std::net::Shutdown::Both);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => std::thread::sleep(IDLE_POLL),
            Err(e) => {
                // Transient accept failures must not kill the daemon.
                eprintln!("rmd serve: accept: {e}");
                std::thread::sleep(IDLE_POLL);
            }
        }
    }
    let _ = std::fs::remove_file(path);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    /// Serializes daemon tests: the shutdown flag is process-global.
    static FLAG_LOCK: Mutex<()> = Mutex::new(());

    #[derive(Clone, Default)]
    struct SharedBuf(Arc<Mutex<Vec<u8>>>);

    impl Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    fn run_lines(lines: &str, opts: &ServeOptions) -> (Vec<serde_json::Value>, ServeSummary) {
        let _g = FLAG_LOCK.lock().unwrap_or_else(|p| p.into_inner());
        signal::set_shutdown(false);
        let mut engine = ServeEngine::new(opts.engine.clone());
        let buf = SharedBuf::default();
        let writer: SharedWriter = Arc::new(Mutex::new(Box::new(buf.clone())));
        serve_stream(
            Cursor::new(lines.as_bytes().to_vec()),
            writer,
            &mut engine,
            opts,
        );
        let out = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
        let replies = out
            .lines()
            .map(|l| serde_json::from_str(l).unwrap_or_else(|e| panic!("{l}: {e}")))
            .collect();
        signal::set_shutdown(false);
        (replies, summary_of(&engine))
    }

    #[test]
    fn pipelined_frames_answered_in_order() {
        let lines = concat!(
            r#"{"type":"machine","model":"fig1","id":0}"#, "\n",
            r#"{"type":"status","id":1}"#, "\n",
            r#"{"type":"nope","id":2}"#, "\n",
            r#"{"type":"status","id":3}"#, "\n",
        );
        let (replies, summary) = run_lines(lines, &ServeOptions::default());
        assert_eq!(replies.len(), 4);
        for (i, r) in replies.iter().enumerate() {
            assert_eq!(
                r.get("id").and_then(|v| v.as_u64()),
                Some(i as u64),
                "admission order must be preserved"
            );
        }
        assert_eq!(replies[2].get("ok").and_then(|v| v.as_bool()), Some(false));
        assert_eq!(summary.requests, 4);
        assert_eq!(summary.ok, 3);
        assert_eq!(summary.errors, 1);
    }

    #[test]
    fn shutdown_request_drains_and_exits() {
        let lines = concat!(
            r#"{"type":"status","id":0}"#, "\n",
            r#"{"type":"shutdown","id":1}"#, "\n",
        );
        let (replies, _) = run_lines(lines, &ServeOptions::default());
        // Both frames were admitted before the shutdown reply flipped
        // the flag, so both are answered; the stream then ends.
        assert_eq!(replies.len(), 2);
        assert_eq!(replies[1].get("draining").and_then(|v| v.as_bool()), Some(true));
    }

    #[test]
    fn eof_ends_the_stream() {
        let (replies, summary) = run_lines("", &ServeOptions::default());
        assert!(replies.is_empty());
        assert_eq!(summary, ServeSummary::default());
    }
}
