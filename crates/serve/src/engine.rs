//! The request engine: all protocol semantics, no I/O.
//!
//! [`ServeEngine::handle_line`] takes one frame and returns one reply
//! line — the daemon loop in [`crate::daemon`] only does framing,
//! admission control, and shutdown around it, and the bench load
//! driver and the soak tests drive it directly. Every request runs
//! under [`std::panic::catch_unwind`]: a panicking request yields a
//! typed `panicked` reply and *quarantines* the cached machine entry
//! it touched, so no partially mutated state survives into later
//! requests. Results are byte-identical to offline scheduling on the
//! same inputs — caching, eviction, and degradation change
//! availability and latency, never schedules.

use crate::chaos::{Chaos, ChaosAction};
use crate::error::ServeError;
use crate::fingerprint::fingerprint;
use crate::flight::{FlightEntry, FlightRecorder, DEFAULT_FLIGHT_CAPACITY};
use crate::proto::{
    parse_frame, EdgeSpec, Frame, MachineSource, ReplyBuilder, Request, DEFAULT_MAX_FRAME_BYTES,
};
use rmd_core::{reduce_with_fallback, FallbackEvent, Limits, Objective, ReduceOptions, RmdError};
use rmd_machine::{mdl, models, MachineDescription};
use rmd_obs::{Event, EventKind, MetricRegistry};
use rmd_query::{ModuloMaskCache, WordLayout};
use rmd_sched::{
    mii::mii, DepGraph, ImsConfig, ImsError, IterativeModuloScheduler, Representation,
    SchedScratch,
};
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::{Duration, Instant};

/// Tuning knobs for a [`ServeEngine`].
#[derive(Clone, Debug)]
pub struct EngineConfig {
    /// Maximum machines cached at once (LRU beyond that).
    pub machine_cap: usize,
    /// Entry cap for each machine's [`ModuloMaskCache`].
    pub mask_cache_cap: usize,
    /// Deadline applied when a request names none; `0` disables.
    pub default_deadline_ms: u64,
    /// Worker-thread cap for suite requests.
    pub max_threads: usize,
    /// Per-frame size limit in bytes.
    pub max_frame_bytes: usize,
    /// Deterministic fault injection, when enabled.
    pub chaos: Option<Chaos>,
    /// When set, a machine is admitted only if some `*.json` file in
    /// this directory is an `rmd certify` certificate vouching for its
    /// content fingerprint; others are refused with an `uncertified`
    /// reply. `None` (the default) disables the gate.
    pub cert_dir: Option<std::path::PathBuf>,
    /// Request summaries retained by the crash flight recorder.
    pub flight_capacity: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            machine_cap: 8,
            mask_cache_cap: 64,
            default_deadline_ms: 0,
            max_threads: 8,
            max_frame_bytes: DEFAULT_MAX_FRAME_BYTES,
            chaos: None,
            cert_dir: None,
            flight_capacity: DEFAULT_FLIGHT_CAPACITY,
        }
    }
}

/// Whether any `*.json` certificate in `dir` vouches for fingerprint
/// `fp`. Unreadable directories or files simply fail to vouch — the
/// gate's failure mode is refusal, never a panic.
fn certificate_vouches(dir: &std::path::Path, fp: &str) -> bool {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return false;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.extension().is_some_and(|x| x == "json") {
            if let Ok(text) = std::fs::read_to_string(&path) {
                if rmd_certify::Certificate::vouches_for(&text, fp) {
                    return true;
                }
            }
        }
    }
    false
}

/// Loops scheduled between deadline checks in a suite request.
const SUITE_DEADLINE_CHUNK: usize = 32;

/// A cached machine: the description to schedule against plus the
/// shared (LRU-bounded) mask cache and reusable scheduling scratch for
/// it.
struct MachineEntry {
    original: MachineDescription,
    /// The verified reduced machine, or the original after a fallback.
    sched_machine: MachineDescription,
    layout: WordLayout,
    mask_cache: ModuloMaskCache,
    /// Scheduling buffers reused across this machine's requests: after
    /// the first schedule of a given shape, repeat requests allocate
    /// nothing on the scheduling path.
    scratch: SchedScratch,
    fallback: Option<&'static str>,
    last_used: u64,
}

/// The deadline attached to one request.
#[derive(Clone, Copy, Debug)]
struct Deadline {
    at: Option<Instant>,
    ms: u64,
}

impl Deadline {
    fn none() -> Self {
        Deadline { at: None, ms: 0 }
    }

    fn check(&self) -> Result<(), ServeError> {
        match self.at {
            Some(at) if Instant::now() > at => Err(ServeError::Timeout {
                deadline_ms: self.ms,
            }),
            _ => Ok(()),
        }
    }
}

/// The fault-isolated request engine. One instance per daemon; it is
/// driven from a single thread and fans suite work out through the
/// `rmd-bench` parallel engine internally.
pub struct ServeEngine {
    cfg: EngineConfig,
    machines: HashMap<String, MachineEntry>,
    tick: u64,
    req_index: u64,
    metrics: MetricRegistry,
    started: Instant,
    draining: bool,
    /// Fingerprint the currently executing request resolved; read back
    /// for quarantine when the request panics.
    touched: Option<String>,
    flight: FlightRecorder,
    /// Dependence graph reused across `schedule` requests (node and
    /// edge arenas keep their capacity; see [`DepGraph::clear`]).
    graph_scratch: DepGraph,
}

impl ServeEngine {
    /// A fresh engine.
    pub fn new(cfg: EngineConfig) -> Self {
        let flight = FlightRecorder::new(cfg.flight_capacity);
        ServeEngine {
            cfg,
            machines: HashMap::new(),
            tick: 0,
            req_index: 0,
            metrics: MetricRegistry::new(),
            started: Instant::now(),
            draining: false,
            touched: None,
            flight,
            graph_scratch: DepGraph::new(),
        }
    }

    /// The engine's metric registry (counters, latency histograms).
    pub fn metrics(&self) -> &MetricRegistry {
        &self.metrics
    }

    /// Counter accessor for summaries.
    pub fn counter(&self, name: &str) -> u64 {
        self.metrics.counter(name)
    }

    /// Marks the engine as draining: subsequent requests are answered
    /// with `shutting_down` (the daemon still drains what was admitted
    /// before the flag flipped — it calls this only for frames read
    /// *after* shutdown began).
    pub fn set_draining(&mut self, v: bool) {
        self.draining = v;
    }

    /// Records `n` requests shed by the daemon's admission queue.
    pub fn record_shed(&mut self, n: u64) {
        if n > 0 {
            self.metrics.inc("serve.shed", n);
        }
    }

    /// Handles one frame. Returns the reply line (no newline) and
    /// whether the request asked the daemon to begin a graceful drain.
    ///
    /// Never panics: request execution runs under `catch_unwind`, and a
    /// panic quarantines whatever cached machine the request touched.
    ///
    /// When the frame carries `trace: true`, rmd-obs recording is
    /// enabled for the duration of this request and the reply gains a
    /// `trace` member holding its span tree (parse → cache lookup →
    /// reduction → schedule → reply) as an inline Chrome-trace slice.
    /// With tracing off — the default — the reply bytes are identical
    /// to the offline CLI path.
    pub fn handle_line(&mut self, line: &str, admitted_at: Instant) -> (String, bool) {
        let idx = self.req_index;
        self.req_index += 1;
        self.metrics.inc("serve.requests", 1);

        let action = match self.cfg.chaos {
            Some(c) => c.action(idx),
            None => ChaosAction::None,
        };
        let corrupted;
        let line = if action == ChaosAction::CorruptFrame {
            self.metrics.inc("serve.chaos.corrupted", 1);
            corrupted = Chaos::corrupt(line);
            &corrupted
        } else {
            line
        };

        let parse_start = rmd_obs::now_ns();
        let frame = parse_frame(line, self.cfg.max_frame_bytes);
        let parse_dur = rmd_obs::now_ns().saturating_sub(parse_start);
        let id = frame.id.clone();
        let kind = request_kind(&frame);
        let tracing_was = if frame.trace {
            let was = rmd_obs::is_enabled();
            rmd_obs::set_enabled(true);
            rmd_obs::drain_events(); // discard this thread's stale events
            Some(was)
        } else {
            None
        };
        let trace = frame.trace;

        let quarantined_before = self.metrics.counter("serve.quarantined");
        self.touched = None;
        let (reply, shutdown) = self.handle_frame(frame, admitted_at, action, idx);
        let outcome = match &reply {
            Ok(_) => "ok".to_string(),
            Err(e) => e.kind().to_string(),
        };
        let panicked = matches!(&reply, Err(ServeError::Panicked { .. }));
        let reply = match reply {
            Ok(r) => {
                self.metrics.inc("serve.ok", 1);
                r
            }
            Err(e) => {
                self.metrics.inc("serve.errors", 1);
                self.metrics.inc(&format!("serve.errors.{}", e.kind()), 1);
                e.to_reply(id.as_deref())
            }
        };
        let elapsed = admitted_at.elapsed().as_nanos() as u64;
        self.metrics.observe("serve.latency_ns", elapsed);

        // Flight recorder: every request leaves a summary, and a panic
        // trips a black-box dump that includes the offender itself.
        self.flight.record(FlightEntry {
            req: idx,
            id,
            kind,
            fingerprint: self.touched.clone(),
            latency_ns: elapsed,
            outcome,
        });
        if panicked {
            let reason = if self.metrics.counter("serve.quarantined") > quarantined_before {
                "panic+quarantine"
            } else {
                "panic"
            };
            self.flight.trip(reason);
        }

        let reply = if let Some(was) = tracing_was {
            let mut events = rmd_obs::drain_events();
            events.insert(
                0,
                Event {
                    cat: "serve",
                    name: "parse",
                    kind: EventKind::Span,
                    start_ns: parse_start,
                    dur_ns: parse_dur,
                    tid: 0,
                    arg: Some(("req", idx)),
                },
            );
            events.push(Event {
                cat: "serve",
                name: "reply",
                kind: EventKind::Instant,
                start_ns: rmd_obs::now_ns(),
                dur_ns: 0,
                tid: 0,
                arg: Some(("req", idx)),
            });
            rmd_obs::set_enabled(was);
            splice_trace(reply, &events)
        } else {
            debug_assert!(!trace);
            reply
        };
        (reply, shutdown)
    }

    fn handle_frame(
        &mut self,
        frame: Frame,
        admitted_at: Instant,
        action: ChaosAction,
        idx: u64,
    ) -> (Result<String, ServeError>, bool) {
        if self.draining {
            return (Err(ServeError::ShuttingDown), false);
        }
        let req = match frame.body {
            Ok(r) => r,
            Err(e) => return (Err(e), false),
        };
        let deadline_ms = frame.deadline_ms.unwrap_or(self.cfg.default_deadline_ms);
        let deadline = if deadline_ms == 0 {
            Deadline::none()
        } else {
            Deadline {
                at: Some(admitted_at + Duration::from_millis(deadline_ms)),
                ms: deadline_ms,
            }
        };
        // Time spent queued counts against the deadline.
        if let Err(e) = deadline.check() {
            return (Err(e), false);
        }
        let shutdown = matches!(req, Request::Shutdown);
        let id = frame.id.as_deref();
        let ty = match &req {
            Request::Machine { .. } => "machine",
            Request::Schedule { .. } => "schedule",
            Request::Suite { .. } => "suite",
            Request::Status => "status",
            Request::Metrics => "metrics",
            Request::Shutdown => "shutdown",
        };
        self.touched = None;
        let id_owned = id.map(str::to_string);
        let t0 = Instant::now();
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            self.execute(req, id_owned.as_deref(), deadline, action, idx)
        }));
        self.metrics.observe(
            &format!("serve.latency_ns.{ty}"),
            t0.elapsed().as_nanos() as u64,
        );
        match outcome {
            Ok(r) => (r, shutdown),
            Err(payload) => {
                // Quarantine: drop the entry this request touched so a
                // partial mutation can never serve a later request. The
                // fingerprint stays readable in `touched` so the flight
                // recorder can attribute the incident.
                if let Some(fp) = self.touched.clone() {
                    if self.machines.remove(&fp).is_some() {
                        self.metrics.inc("serve.quarantined", 1);
                    }
                }
                let detail = if let Some(s) = payload.downcast_ref::<&str>() {
                    (*s).to_string()
                } else if let Some(s) = payload.downcast_ref::<String>() {
                    s.clone()
                } else {
                    "non-string panic payload".to_string()
                };
                (Err(ServeError::Panicked { detail }), false)
            }
        }
    }

    fn execute(
        &mut self,
        req: Request,
        id: Option<&str>,
        deadline: Deadline,
        action: ChaosAction,
        idx: u64,
    ) -> Result<String, ServeError> {
        // Chaos slow handler: burn wall-clock before doing the work so
        // deadline enforcement has something to catch.
        if let ChaosAction::SlowMs(ms) = action {
            self.metrics.inc("serve.chaos.slowed", 1);
            std::thread::sleep(Duration::from_millis(ms));
            deadline.check()?;
        }
        match req {
            Request::Machine {
                source,
                strict,
                max_steps,
            } => self.exec_machine(id, source, strict, max_steps, deadline, action, idx),
            Request::Schedule {
                fingerprint,
                nodes,
                edges,
                budget_ratio,
                max_ii,
            } => self.exec_schedule(id, &fingerprint, &nodes, &edges, budget_ratio, max_ii, deadline, action, idx),
            Request::Suite {
                fingerprint,
                loops,
                seed,
                threads,
            } => self.exec_suite(id, &fingerprint, loops, seed, threads, deadline, action, idx),
            Request::Status => Ok(self.exec_status(id)),
            Request::Metrics => Ok(ReplyBuilder::ok(id, "metrics")
                .raw(
                    "metrics",
                    &rmd_obs::export::registry_to_json(&self.metrics_snapshot()),
                )
                .finish()),
            Request::Shutdown => Ok(ReplyBuilder::ok(id, "shutdown")
                .bool("draining", true)
                .finish()),
        }
    }

    fn chaos_panic_point(&mut self, action: ChaosAction) {
        if action == ChaosAction::Panic {
            self.metrics.inc("serve.chaos.panicked", 1);
            panic!("chaos: injected mid-request panic");
        }
    }

    fn load_source(&self, source: &MachineSource) -> Result<MachineDescription, ServeError> {
        let m = match source {
            MachineSource::Model(name) => match name.as_str() {
                "fig1" => models::example_machine(),
                "mips" => models::mips_r3000(),
                "alpha" => models::alpha21064(),
                "cydra5" => models::cydra5(),
                "cydra5-subset" => models::cydra5_subset(),
                other => {
                    return Err(ServeError::BadRequest {
                        detail: format!("unknown built-in model {other:?}"),
                    })
                }
            },
            MachineSource::Mdl(src) => {
                let (m, _) = mdl::parse_machine(src)
                    .map_err(|e| ServeError::Rmd(RmdError::Parse(e)))?;
                m
            }
        };
        Limits::default()
            .validate(&m)
            .map_err(ServeError::Rmd)?;
        Ok(m)
    }

    #[allow(clippy::too_many_arguments)]
    fn exec_machine(
        &mut self,
        id: Option<&str>,
        source: MachineSource,
        strict: bool,
        max_steps: Option<u64>,
        deadline: Deadline,
        action: ChaosAction,
        idx: u64,
    ) -> Result<String, ServeError> {
        let m = self.load_source(&source)?;
        let lookup_span = rmd_obs::span_with("serve", "cache_lookup", "req", idx);
        let fp = fingerprint(&m);
        self.touched = Some(fp.clone());
        drop(lookup_span);
        self.chaos_panic_point(action);
        if let Some(entry) = self.machines.get_mut(&fp) {
            self.tick += 1;
            entry.last_used = self.tick;
            let reply = ReplyBuilder::ok(id, "machine")
                .str("fingerprint", &fp)
                .bool("cached", true)
                .bool("fallback", entry.fallback.is_some())
                .num("resources", entry.original.num_resources() as u64)
                .num("reduced_resources", entry.sched_machine.num_resources() as u64)
                .num("operations", entry.original.num_operations() as u64)
                .finish();
            return Ok(reply);
        }
        // Certificate gate: an uncached machine is admitted only when a
        // certificate on disk vouches for its content fingerprint.
        // (Cache hits above were certified at admission.)
        if let Some(dir) = &self.cfg.cert_dir {
            if !certificate_vouches(dir, &fp) {
                return Err(ServeError::Uncertified { fingerprint: fp });
            }
        }
        deadline.check()?;
        let layout = WordLayout::widest(64, m.num_resources());
        let options = ReduceOptions {
            limits: Limits::default(),
            max_steps,
        };
        let reduce_span = rmd_obs::span_with("serve", "reduction", "req", idx);
        let red = reduce_with_fallback(&m, Objective::KCycleWord { k: layout.k }, &options);
        drop(reduce_span);
        if strict {
            if let Some(ev) = &red.fallback {
                return Err(ServeError::Rmd(ev.error().clone()));
            }
        }
        deadline.check()?;
        let fallback = red.fallback.as_ref().map(|ev| match ev {
            FallbackEvent::ReductionFailed(_) => "reduction_failed",
            FallbackEvent::VerificationFailed(_) => "verification_failed",
            _ => "fallback",
        });
        let sched_machine = red.machine;
        let sched_layout = WordLayout::widest(64, sched_machine.num_resources());
        let mask_cache =
            ModuloMaskCache::with_cap(&sched_machine, sched_layout, self.cfg.mask_cache_cap);
        self.tick += 1;
        let entry = MachineEntry {
            original: m,
            sched_machine,
            layout: sched_layout,
            mask_cache,
            scratch: SchedScratch::new(),
            fallback,
            last_used: self.tick,
        };
        // Bound the machine cache itself: evict the least recently
        // used entry (mask caches and all) beyond the cap.
        while self.machines.len() >= self.cfg.machine_cap {
            if let Some(lru) = self
                .machines
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
            {
                self.machines.remove(&lru);
                self.metrics.inc("serve.machine_evictions", 1);
            } else {
                break;
            }
        }
        let reply = ReplyBuilder::ok(id, "machine")
            .str("fingerprint", &fp)
            .bool("cached", false)
            .bool("fallback", entry.fallback.is_some())
            .num("resources", entry.original.num_resources() as u64)
            .num("reduced_resources", entry.sched_machine.num_resources() as u64)
            .num("operations", entry.original.num_operations() as u64)
            .finish();
        self.machines.insert(fp, entry);
        self.metrics
            .set_gauge("serve.machines_cached", self.machines.len() as u64);
        Ok(reply)
    }

    fn lookup(&mut self, fp: &str) -> Result<(), ServeError> {
        if self.machines.contains_key(fp) {
            self.tick += 1;
            let tick = self.tick;
            if let Some(e) = self.machines.get_mut(fp) {
                e.last_used = tick;
            }
            self.touched = Some(fp.to_string());
            Ok(())
        } else {
            Err(ServeError::UnknownFingerprint { got: fp.to_string() })
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn exec_schedule(
        &mut self,
        id: Option<&str>,
        fp: &str,
        nodes: &[String],
        edges: &[EdgeSpec],
        budget_ratio: Option<f64>,
        max_ii: Option<u32>,
        deadline: Deadline,
        action: ChaosAction,
        idx: u64,
    ) -> Result<String, ServeError> {
        {
            let _g = rmd_obs::span_with("serve", "cache_lookup", "req", idx);
            self.lookup(fp)?;
        }
        self.chaos_panic_point(action);
        let defaults = ImsConfig::default();
        let config = ImsConfig {
            budget_ratio: budget_ratio.unwrap_or(defaults.budget_ratio),
            max_ii: max_ii.unwrap_or(defaults.max_ii),
            ..defaults
        };
        // The request graph is built in a reused arena taken off the
        // engine; it is put back after a successful reply. Early error
        // returns drop it (losing only retained capacity, never
        // correctness) — the next request just starts from a fresh one.
        let mut g = std::mem::take(&mut self.graph_scratch);
        let entry = self.machines.get_mut(fp).expect("looked up above");
        if let Err(e) = build_graph_into(&mut g, &entry.original, nodes, edges) {
            self.graph_scratch = g;
            return Err(e);
        }
        deadline.check()?;
        let lower = mii(&g, &entry.original);
        let ims = IterativeModuloScheduler::new(config);
        let sched_span = rmd_obs::span_with("serve", "schedule", "req", idx);
        let r = ims
            .schedule_with_mii_cached_scratch(
                &g,
                &entry.sched_machine,
                Representation::Bitvec(entry.layout),
                lower,
                &mut entry.mask_cache,
                &mut entry.scratch,
            )
            .map_err(|e| match e {
                ImsError::NoFeasibleIi { max_ii } => {
                    ServeError::Rmd(RmdError::Unschedulable { max_ii })
                }
                other => ServeError::BadRequest {
                    detail: format!("scheduler error: {other}"),
                },
            })?;
        drop(sched_span);
        deadline.check()?;
        let reply = ReplyBuilder::ok(id, "schedule")
            .str("fingerprint", fp)
            .num("ii", u64::from(r.ii))
            .num("mii", u64::from(r.mii))
            .num("decisions", r.decisions)
            .num("attempts", u64::from(r.attempts))
            .nums("times", r.times.iter().map(|&t| u64::from(t)))
            .finish();
        entry.scratch.recycle(r);
        self.graph_scratch = g;
        Ok(reply)
    }

    #[allow(clippy::too_many_arguments)]
    fn exec_suite(
        &mut self,
        id: Option<&str>,
        fp: &str,
        loops: usize,
        seed: u64,
        threads: Option<usize>,
        deadline: Deadline,
        action: ChaosAction,
        idx: u64,
    ) -> Result<String, ServeError> {
        {
            let _g = rmd_obs::span_with("serve", "cache_lookup", "req", idx);
            self.lookup(fp)?;
        }
        self.chaos_panic_point(action);
        let threads = threads.unwrap_or(1).clamp(1, self.cfg.max_threads);
        let entry = self.machines.get(fp).expect("looked up above");
        // The generator vocabulary must resolve against this machine;
        // a missing op is a client error, not a panic.
        const SUITE_OPS: [&str; 11] = [
            "load.w.0", "load.w.1", "store.w.0", "store.w.1", "aadd.0", "aadd.1", "fadd",
            "fmul", "fmul.d", "iadd", "recip",
        ];
        for name in SUITE_OPS {
            if entry.original.op_by_name(name).is_none() {
                return Err(ServeError::BadRequest {
                    detail: format!(
                        "machine lacks op {name:?} required by the suite generator"
                    ),
                });
            }
        }
        if entry.original.op_by_name("brtop").is_none() {
            return Err(ServeError::BadRequest {
                detail: "machine lacks op \"brtop\" required by the suite generator".to_string(),
            });
        }
        let ops = rmd_loops::OpSet::for_cydra_subset(&entry.original);
        let suite = rmd_loops::suite(&ops, loops, seed);
        deadline.check()?;
        // Dispatch in chunks through the existing parallel engine so
        // long suites still honor their deadline between chunks.
        let _suite_span = rmd_obs::span_with("serve", "schedule", "req", idx);
        let mut runs = Vec::with_capacity(suite.len());
        for chunk in suite.chunks(SUITE_DEADLINE_CHUNK) {
            runs.extend(rmd_bench::run_suite_runs_parallel(
                &entry.sched_machine,
                &entry.original,
                chunk,
                Representation::Bitvec(entry.layout),
                ImsConfig::default().budget_ratio,
                threads,
            ));
            deadline.check()?;
        }
        let at_mii = runs.iter().filter(|r| r.ii == r.mii).count();
        let sum_ii: u64 = runs.iter().map(|r| u64::from(r.ii)).sum();
        let digest = suite_digest(&runs);
        Ok(ReplyBuilder::ok(id, "suite")
            .str("fingerprint", fp)
            .num("loops", runs.len() as u64)
            .num("at_mii", at_mii as u64)
            .num("sum_ii", sum_ii)
            .num("threads", threads as u64)
            .str("schedule_digest", &digest)
            .finish())
    }

    fn exec_status(&mut self, id: Option<&str>) -> String {
        ReplyBuilder::ok(id, "status")
            .num("requests", self.metrics.counter("serve.requests"))
            .num("ok", self.metrics.counter("serve.ok"))
            .num("errors", self.metrics.counter("serve.errors"))
            .num("shed", self.metrics.counter("serve.shed"))
            .num("quarantined", self.metrics.counter("serve.quarantined"))
            .num("machines_cached", self.machines.len() as u64)
            .num("uptime_ms", self.started.elapsed().as_millis() as u64)
            .bool("draining", self.draining)
            .finish()
    }

    /// A point-in-time copy of the full metric registry: the engine's
    /// own counters/gauges/histograms plus every cached machine's
    /// mask-cache statistics. The live registry is untouched, so
    /// snapshots are repeatable — taking one every N requests (the
    /// daemon's `--metrics-every`) never double-counts the additively
    /// exported mask-cache counters, and a snapshot equals the merge of
    /// the per-source registries at that instant.
    pub fn metrics_snapshot(&self) -> MetricRegistry {
        let mut snap = self.metrics.clone();
        for entry in self.machines.values() {
            entry.mask_cache.export_to(&mut snap, "serve.mask_cache");
        }
        snap.set_gauge("serve.machines_cached", self.machines.len() as u64);
        snap
    }

    /// Exports per-machine mask-cache statistics into the registry and
    /// returns the full registry as compact JSON — called once by the
    /// daemon when it drains.
    pub fn flush_metrics(&mut self) -> String {
        self.metrics = self.metrics_snapshot();
        rmd_obs::export::registry_to_json(&self.metrics)
    }

    /// Queues a flight-recorder dump for `reason` ("drain", …); the
    /// transport layer publishes it via [`take_flight_dumps`].
    ///
    /// [`take_flight_dumps`]: ServeEngine::take_flight_dumps
    pub fn trip_flight(&mut self, reason: &str) {
        self.flight.trip(reason);
    }

    /// Takes every flight-recorder dump tripped since the last call
    /// (each one self-describing JSON), oldest first.
    pub fn take_flight_dumps(&mut self) -> Vec<String> {
        self.flight.take_dumps()
    }

    /// The most recent flight-recorder entry, if any — the request the
    /// engine just answered. The daemon's `--slow-ms` log reads this.
    pub fn last_flight_entry(&self) -> Option<&FlightEntry> {
        self.flight.entries().last()
    }
}

/// The request kind recorded in the flight ring — the protocol type
/// name, or `"invalid"` when the body never parsed.
fn request_kind(frame: &Frame) -> &'static str {
    match &frame.body {
        Ok(Request::Machine { .. }) => "machine",
        Ok(Request::Schedule { .. }) => "schedule",
        Ok(Request::Suite { .. }) => "suite",
        Ok(Request::Status) => "status",
        Ok(Request::Metrics) => "metrics",
        Ok(Request::Shutdown) => "shutdown",
        Err(_) => "invalid",
    }
}

/// Splices a Chrome-trace slice into a finished reply line as its
/// `trace` member. The exporter's inter-token newlines are stripped so
/// the reply stays one line — the framing invariant of the protocol —
/// which is safe because string values escape `\n`.
fn splice_trace(reply: String, events: &[Event]) -> String {
    let chrome = rmd_obs::export::events_to_chrome_trace(events).replace('\n', "");
    let mut out = reply;
    debug_assert!(out.ends_with('}'));
    out.pop();
    out.push_str(",\"trace\":");
    out.push_str(&chrome);
    out.push('}');
    out
}

/// Builds the dependence graph of a `schedule` request into a reused
/// arena (cleared first), resolving node names against the submitted
/// machine.
fn build_graph_into(
    g: &mut DepGraph,
    machine: &MachineDescription,
    nodes: &[String],
    edges: &[EdgeSpec],
) -> Result<(), ServeError> {
    g.clear();
    let mut ids = Vec::with_capacity(nodes.len());
    for name in nodes {
        let op = machine
            .op_by_name(name)
            .ok_or_else(|| ServeError::BadRequest {
                detail: format!("machine has no operation named {name:?}"),
            })?;
        ids.push(g.add_node(op));
    }
    for e in edges {
        g.add_edge(ids[e.from], ids[e.to], e.delay, e.distance, e.kind);
    }
    Ok(())
}

/// FNV-1a digest over every loop's achieved II and issue times — a
/// compact, order-sensitive schedule identity usable for offline
/// byte-identity checks.
fn suite_digest(runs: &[rmd_bench::LoopRun]) -> String {
    let mut h = rmd_machine::fnv::Fnv64::new();
    for r in runs {
        h.write(&u64::from(r.ii).to_le_bytes());
        for &t in &r.times {
            h.write(&u64::from(t).to_le_bytes());
        }
    }
    format!("{:016x}", h.finish())
}

/// Computes the digest of an offline (library-level) suite run — the
/// reference the soak test compares daemon replies against.
pub fn offline_suite_digest(runs: &[rmd_bench::LoopRun]) -> String {
    suite_digest(runs)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine() -> ServeEngine {
        ServeEngine::new(EngineConfig::default())
    }

    fn ok_reply(engine: &mut ServeEngine, line: &str) -> serde_json::Value {
        let (reply, _) = engine.handle_line(line, Instant::now());
        let v = serde_json::from_str(&reply).expect("reply is JSON");
        assert_eq!(
            v.get("ok").and_then(serde_json::Value::as_bool),
            Some(true),
            "{reply}"
        );
        v
    }

    fn submit_fig1(engine: &mut ServeEngine) -> String {
        let v = ok_reply(engine, r#"{"type":"machine","model":"fig1"}"#);
        v.get("fingerprint").and_then(|f| f.as_str()).unwrap().to_string()
    }

    #[test]
    fn machine_then_schedule_roundtrip() {
        let mut e = engine();
        let fp = submit_fig1(&mut e);
        let line = format!(
            r#"{{"type":"schedule","fingerprint":"{fp}","nodes":["A","B"],"edges":[[0,1,2,0]],"id":1}}"#
        );
        let v = ok_reply(&mut e, &line);
        let times = v.get("times").and_then(|t| t.as_array()).unwrap();
        assert_eq!(times.len(), 2);
        assert!(v.get("ii").and_then(|i| i.as_u64()).unwrap() >= 1);
        assert_eq!(v.get("id").and_then(|i| i.as_u64()), Some(1));
    }

    #[test]
    fn schedule_matches_offline_library_result() {
        let mut e = engine();
        let fp = submit_fig1(&mut e);
        let line = format!(
            r#"{{"type":"schedule","fingerprint":"{fp}","nodes":["A","B","B"],"edges":[[0,1,2,0],[1,2,1,0]]}}"#
        );
        let v = ok_reply(&mut e, &line);

        // Offline: same rule the engine documents — reduce with
        // fallback under the widest layout, MII from the original,
        // schedule on the reduced machine.
        let m = models::example_machine();
        let layout = WordLayout::widest(64, m.num_resources());
        let red = reduce_with_fallback(
            &m,
            Objective::KCycleWord { k: layout.k },
            &ReduceOptions::default(),
        );
        let sched_layout = WordLayout::widest(64, red.machine.num_resources());
        let a = m.op_by_name("A").unwrap();
        let b = m.op_by_name("B").unwrap();
        let mut g = DepGraph::new();
        let n0 = g.add_node(a);
        let n1 = g.add_node(b);
        let n2 = g.add_node(b);
        g.add_edge(n0, n1, 2, 0, rmd_sched::DepKind::Flow);
        g.add_edge(n1, n2, 1, 0, rmd_sched::DepKind::Flow);
        let lower = mii(&g, &m);
        let r = IterativeModuloScheduler::new(ImsConfig::default())
            .schedule_with_mii(
                &g,
                &red.machine,
                Representation::Bitvec(sched_layout),
                lower,
            )
            .expect("offline schedule");
        let got: Vec<u64> = v
            .get("times")
            .and_then(|t| t.as_array())
            .unwrap()
            .iter()
            .map(|t| t.as_u64().unwrap())
            .collect();
        let want: Vec<u64> = r.times.iter().map(|&t| u64::from(t)).collect();
        assert_eq!(got, want, "daemon schedule must be byte-identical");
        assert_eq!(v.get("ii").and_then(|i| i.as_u64()), Some(u64::from(r.ii)));
    }

    #[test]
    fn unknown_fingerprint_is_typed() {
        let mut e = engine();
        let (reply, _) = e.handle_line(
            r#"{"type":"schedule","fingerprint":"rmd-ffff","nodes":["A"]}"#,
            Instant::now(),
        );
        let v = serde_json::from_str(&reply).unwrap();
        assert_eq!(v.get("ok").and_then(|o| o.as_bool()), Some(false));
        assert_eq!(
            v.get("error").and_then(|e| e.get("kind")).and_then(|k| k.as_str()),
            Some("unknown_fingerprint")
        );
        // The engine keeps serving.
        submit_fig1(&mut e);
    }

    #[test]
    fn expired_deadline_yields_timeout() {
        let mut e = engine();
        let admitted = Instant::now() - Duration::from_millis(100);
        let (reply, _) = e.handle_line(
            r#"{"type":"machine","model":"fig1","deadline_ms":5}"#,
            admitted,
        );
        let v = serde_json::from_str(&reply).unwrap();
        assert_eq!(
            v.get("error").and_then(|e| e.get("kind")).and_then(|k| k.as_str()),
            Some("timeout"),
            "{reply}"
        );
    }

    #[test]
    fn strict_budget_exhaustion_is_typed() {
        let mut e = engine();
        let (reply, _) = e.handle_line(
            r#"{"type":"machine","model":"cydra5-subset","strict":true,"max_steps":1}"#,
            Instant::now(),
        );
        let v = serde_json::from_str(&reply).unwrap();
        let kind = v
            .get("error")
            .and_then(|e| e.get("kind"))
            .and_then(|k| k.as_str())
            .unwrap();
        assert_eq!(kind, "budget_exhausted", "{reply}");
        // Same request without strict falls back and succeeds.
        let v = ok_reply(
            &mut e,
            r#"{"type":"machine","model":"cydra5-subset","max_steps":1}"#,
        );
        assert_eq!(v.get("fallback").and_then(|f| f.as_bool()), Some(true));
    }

    #[test]
    fn status_and_shutdown() {
        let mut e = engine();
        submit_fig1(&mut e);
        let v = ok_reply(&mut e, r#"{"type":"status"}"#);
        assert_eq!(v.get("machines_cached").and_then(|m| m.as_u64()), Some(1));
        let (reply, shutdown) = e.handle_line(r#"{"type":"shutdown"}"#, Instant::now());
        assert!(shutdown);
        assert!(reply.contains("\"draining\":true"));
        e.set_draining(true);
        let (reply, _) = e.handle_line(r#"{"type":"status"}"#, Instant::now());
        let v = serde_json::from_str(&reply).unwrap();
        assert_eq!(
            v.get("error").and_then(|e| e.get("kind")).and_then(|k| k.as_str()),
            Some("shutting_down")
        );
    }

    #[test]
    fn suite_runs_and_is_deterministic() {
        let mut e = engine();
        let v = ok_reply(&mut e, r#"{"type":"machine","model":"cydra5-subset"}"#);
        let fp = v.get("fingerprint").and_then(|f| f.as_str()).unwrap().to_string();
        let line =
            format!(r#"{{"type":"suite","fingerprint":"{fp}","loops":16,"seed":7,"threads":2}}"#);
        let a = ok_reply(&mut e, &line);
        let b = ok_reply(&mut e, &line);
        assert_eq!(
            a.get("schedule_digest").and_then(|d| d.as_str()),
            b.get("schedule_digest").and_then(|d| d.as_str())
        );
        assert_eq!(a.get("loops").and_then(|l| l.as_u64()), Some(16));
    }

    #[test]
    fn machine_cache_is_bounded() {
        let mut e = ServeEngine::new(EngineConfig {
            machine_cap: 1,
            ..EngineConfig::default()
        });
        submit_fig1(&mut e);
        ok_reply(&mut e, r#"{"type":"machine","model":"mips"}"#);
        assert!(e.counter("serve.machine_evictions") >= 1);
        let v = ok_reply(&mut e, r#"{"type":"status"}"#);
        assert_eq!(v.get("machines_cached").and_then(|m| m.as_u64()), Some(1));
    }

    #[test]
    fn chaos_panic_quarantines_touched_machine() {
        // Find a seed whose action stream is: clean machine submit, a
        // panic on the second request, then clean requests after.
        let seed = (0u64..10_000)
            .find(|&s| {
                let c = Chaos::new(s);
                c.action(0) == ChaosAction::None
                    && c.action(1) == ChaosAction::Panic
                    && c.action(2) == ChaosAction::None
                    && c.action(3) == ChaosAction::None
            })
            .expect("a suitable chaos seed exists");
        let mut e = ServeEngine::new(EngineConfig {
            chaos: Some(Chaos::new(seed)),
            ..EngineConfig::default()
        });
        let fp = submit_fig1(&mut e);
        let line =
            format!(r#"{{"type":"schedule","fingerprint":"{fp}","nodes":["A"],"id":1}}"#);
        let (reply, _) = e.handle_line(&line, Instant::now());
        let v = serde_json::from_str(&reply).unwrap();
        assert_eq!(
            v.get("error").and_then(|e| e.get("kind")).and_then(|k| k.as_str()),
            Some("panicked"),
            "{reply}"
        );
        assert_eq!(e.counter("serve.quarantined"), 1);
        // The machine the panicking request touched is quarantined...
        let (reply, _) = e.handle_line(&line, Instant::now());
        let v = serde_json::from_str(&reply).unwrap();
        assert_eq!(
            v.get("error").and_then(|e| e.get("kind")).and_then(|k| k.as_str()),
            Some("unknown_fingerprint"),
            "{reply}"
        );
        // ...and resubmitting it heals the daemon in place.
        let fp2 = submit_fig1(&mut e);
        assert_eq!(fp, fp2);
    }

    #[test]
    fn metrics_frame_snapshots_are_repeatable() {
        let mut e = engine();
        let fp = submit_fig1(&mut e);
        let line = format!(
            r#"{{"type":"schedule","fingerprint":"{fp}","nodes":["A","B"],"edges":[[0,1,2,0]]}}"#
        );
        ok_reply(&mut e, &line);
        let a = ok_reply(&mut e, r#"{"type":"metrics","id":9}"#);
        let b = ok_reply(&mut e, r#"{"type":"metrics","id":10}"#);
        let counter = |v: &serde_json::Value, name: &str| {
            v.get("metrics")
                .and_then(|m| m.get("counters"))
                .and_then(|c| c.get(name))
                .and_then(serde_json::Value::as_u64)
        };
        // The engine's own counters advance by exactly the metrics
        // request in between...
        assert_eq!(counter(&a, "serve.requests"), Some(3));
        assert_eq!(counter(&b, "serve.requests"), Some(4));
        // ...while the additively exported mask-cache statistics do NOT
        // double-count across snapshots: no schedule ran in between, so
        // the numbers are identical.
        assert_eq!(
            counter(&a, "serve.mask_cache.misses"),
            counter(&b, "serve.mask_cache.misses")
        );
        assert!(counter(&a, "serve.mask_cache.misses").is_some());
        // The latency histogram is exposed with derived quantiles.
        let hist = a
            .get("metrics")
            .and_then(|m| m.get("histograms"))
            .and_then(|h| h.get("serve.latency_ns"))
            .expect("latency histogram");
        assert!(hist.get("p50").and_then(serde_json::Value::as_u64).is_some());
        assert!(hist.get("p99").and_then(serde_json::Value::as_u64).is_some());
    }

    #[test]
    fn traced_request_carries_span_tree_untraced_stays_byte_identical() {
        let mut e = engine();
        let fp = submit_fig1(&mut e);
        let plain = format!(
            r#"{{"type":"schedule","fingerprint":"{fp}","nodes":["A","B"],"edges":[[0,1,2,0]],"id":1}}"#
        );
        let traced = format!(
            r#"{{"type":"schedule","fingerprint":"{fp}","nodes":["A","B"],"edges":[[0,1,2,0]],"id":1,"trace":true}}"#
        );
        let (before, _) = e.handle_line(&plain, Instant::now());
        let (with_trace, _) = e.handle_line(&traced, Instant::now());
        let (after, _) = e.handle_line(&plain, Instant::now());
        // Tracing off: byte-identical replies before and after the
        // traced request — enabling tracing for one request leaves no
        // residue.
        assert_eq!(before, after);
        assert!(!before.contains("\"trace\""));
        // The traced reply is one line and carries the span tree.
        assert!(!with_trace.contains('\n'));
        let v: serde_json::Value = serde_json::from_str(&with_trace).expect("traced reply parses");
        assert_eq!(v.get("ok").and_then(serde_json::Value::as_bool), Some(true));
        let events = v
            .get("trace")
            .and_then(|t| t.get("traceEvents"))
            .and_then(serde_json::Value::as_array)
            .expect("trace.traceEvents");
        let names: Vec<&str> = events
            .iter()
            .filter_map(|ev| ev.get("name").and_then(serde_json::Value::as_str))
            .collect();
        assert_eq!(names.first(), Some(&"parse"), "{names:?}");
        assert_eq!(names.last(), Some(&"reply"), "{names:?}");
        assert!(names.contains(&"cache_lookup"), "{names:?}");
        assert!(names.contains(&"schedule"), "{names:?}");
        // Every other reply field matches the untraced reply.
        let p: serde_json::Value = serde_json::from_str(&before).unwrap();
        assert_eq!(v.get("times"), p.get("times"));
        assert_eq!(v.get("ii"), p.get("ii"));
    }

    #[test]
    fn panic_trips_a_parseable_flight_dump() {
        let seed = (0u64..10_000)
            .find(|&s| {
                let c = Chaos::new(s);
                c.action(0) == ChaosAction::None && c.action(1) == ChaosAction::Panic
            })
            .expect("a suitable chaos seed exists");
        let mut e = ServeEngine::new(EngineConfig {
            chaos: Some(Chaos::new(seed)),
            ..EngineConfig::default()
        });
        let fp = submit_fig1(&mut e);
        assert!(e.take_flight_dumps().is_empty());
        let line = format!(r#"{{"type":"schedule","fingerprint":"{fp}","nodes":["A"],"id":42}}"#);
        let (reply, _) = e.handle_line(&line, Instant::now());
        assert!(reply.contains("\"panicked\""), "{reply}");
        let dumps = e.take_flight_dumps();
        assert_eq!(dumps.len(), 1);
        let v: serde_json::Value = serde_json::from_str(&dumps[0]).expect("dump parses");
        assert_eq!(
            v.get("flight_recorder").and_then(serde_json::Value::as_str),
            Some(crate::flight::FLIGHT_SCHEMA)
        );
        assert_eq!(
            v.get("reason").and_then(serde_json::Value::as_str),
            Some("panic+quarantine")
        );
        let entries = v.get("entries").and_then(serde_json::Value::as_array).unwrap();
        let last = entries.last().unwrap();
        assert_eq!(last.get("id").and_then(serde_json::Value::as_u64), Some(42));
        assert_eq!(
            last.get("outcome").and_then(serde_json::Value::as_str),
            Some("panicked")
        );
        assert_eq!(
            last.get("fingerprint").and_then(serde_json::Value::as_str),
            Some(fp.as_str()),
            "the dump attributes the quarantined machine"
        );
        // Drain-style manual trips work too and queue separately.
        e.trip_flight("drain");
        assert_eq!(e.take_flight_dumps().len(), 1);
    }

    #[test]
    fn certificate_gate_refuses_unvouched_machines() {
        let dir = std::env::temp_dir().join(format!(
            "rmd-serve-certgate-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).expect("temp cert dir");

        let mut e = ServeEngine::new(EngineConfig {
            cert_dir: Some(dir.clone()),
            ..EngineConfig::default()
        });
        // No certificates on disk: refusal with the typed reply.
        let (reply, _) =
            e.handle_line(r#"{"type":"machine","model":"fig1","id":7}"#, Instant::now());
        let v = serde_json::from_str(&reply).unwrap();
        assert_eq!(
            v.get("error").and_then(|e| e.get("kind")).and_then(|k| k.as_str()),
            Some("uncertified"),
            "{reply}"
        );
        assert_eq!(
            v.get("error").and_then(|e| e.get("code")).and_then(|c| c.as_u64()),
            Some(105)
        );

        // Certify fig1 for real and drop the certificate in place: the
        // same request is now admitted, and stays admitted from cache.
        let cert = rmd_certify::certify_machine(
            &models::example_machine(),
            "fig1",
            &rmd_certify::CertifyOptions::default(),
        )
        .expect("fig1 certifies");
        std::fs::write(dir.join("fig1.json"), cert.render_json()).expect("write cert");
        let v = ok_reply(&mut e, r#"{"type":"machine","model":"fig1"}"#);
        assert_eq!(v.get("cached").and_then(|c| c.as_bool()), Some(false));
        let v = ok_reply(&mut e, r#"{"type":"machine","model":"fig1"}"#);
        assert_eq!(v.get("cached").and_then(|c| c.as_bool()), Some(true));

        // A machine the certificate does not vouch for is still refused.
        let (reply, _) =
            e.handle_line(r#"{"type":"machine","model":"mips"}"#, Instant::now());
        assert!(reply.contains("\"uncertified\""), "{reply}");

        std::fs::remove_dir_all(&dir).ok();
    }
}
