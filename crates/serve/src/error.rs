//! The daemon's typed error replies.
//!
//! Every failure a request can hit — protocol-level (malformed frame,
//! oversized line), the full [`RmdError`] taxonomy, resource exhaustion
//! (deadline, step budget), availability (overload, shutdown), and
//! isolation (a request that panicked) — maps onto one structured JSON
//! reply `{"ok":false,"error":{"code":…,"kind":…,"detail":…}}` with a
//! stable numeric code, so clients can branch without string-matching.

use rmd_core::RmdError;
use std::fmt;

/// A typed failure reply. Codes are stable API: protocol errors are
/// `10x`, the `RmdError` taxonomy is `11x`, resource exhaustion `12x`,
/// availability `13x`, and isolation `14x`.
#[derive(Clone, Debug)]
pub enum ServeError {
    /// The frame was not a single well-formed JSON object.
    Malformed {
        /// Parser message with byte offset.
        detail: String,
    },
    /// The frame exceeded the line-length limit.
    Oversized {
        /// Configured maximum frame length in bytes.
        limit: usize,
        /// Actual frame length in bytes.
        actual: usize,
    },
    /// The `type` member named no known request.
    UnknownType {
        /// The offending type string.
        got: String,
    },
    /// The frame was well-formed JSON but violated the request schema.
    BadRequest {
        /// What was missing or mistyped.
        detail: String,
    },
    /// The request referenced a machine fingerprint the daemon does not
    /// hold (never submitted, or evicted).
    UnknownFingerprint {
        /// The fingerprint the client sent.
        got: String,
    },
    /// The daemon requires certificates and none on disk vouches for
    /// this machine. Run `rmd certify <machine> --out <dir>` or start
    /// the daemon with `--uncertified`.
    Uncertified {
        /// The content fingerprint no certificate vouches for.
        fingerprint: String,
    },
    /// A core pipeline error, carrying the full [`RmdError`] taxonomy.
    Rmd(RmdError),
    /// The request missed its deadline.
    Timeout {
        /// The deadline that was exceeded, in milliseconds.
        deadline_ms: u64,
    },
    /// The admission queue was full; the request was shed, not queued.
    Overloaded {
        /// Hint: retry after this many milliseconds.
        retry_after_ms: u64,
    },
    /// The daemon is draining and admits no new work.
    ShuttingDown,
    /// The request panicked; it was isolated and any cached state it
    /// touched was quarantined.
    Panicked {
        /// The panic payload, if it was a string.
        detail: String,
    },
}

impl ServeError {
    /// The stable numeric code for this error.
    pub fn code(&self) -> u32 {
        match self {
            ServeError::Malformed { .. } => 100,
            ServeError::Oversized { .. } => 101,
            ServeError::UnknownType { .. } => 102,
            ServeError::BadRequest { .. } => 103,
            ServeError::UnknownFingerprint { .. } => 104,
            ServeError::Uncertified { .. } => 105,
            ServeError::Rmd(e) => match e {
                RmdError::Parse(_) => 110,
                RmdError::InvalidMachine(_) => 111,
                RmdError::LimitExceeded { .. } => 112,
                RmdError::DegenerateInput(_) => 113,
                RmdError::VerificationFailed(_) => 114,
                RmdError::Io(_) => 115,
                RmdError::BudgetExhausted { .. } => 120,
                RmdError::Unschedulable { .. } => 121,
                // `RmdError` is non-exhaustive; future variants get a
                // catch-all code in the RmdError band.
                _ => 119,
            },
            ServeError::Timeout { .. } => 130,
            ServeError::Overloaded { .. } => 131,
            ServeError::ShuttingDown => 132,
            ServeError::Panicked { .. } => 140,
        }
    }

    /// The machine-readable kind string for this error.
    pub fn kind(&self) -> &'static str {
        match self {
            ServeError::Malformed { .. } => "malformed",
            ServeError::Oversized { .. } => "oversized",
            ServeError::UnknownType { .. } => "unknown_type",
            ServeError::BadRequest { .. } => "bad_request",
            ServeError::UnknownFingerprint { .. } => "unknown_fingerprint",
            ServeError::Uncertified { .. } => "uncertified",
            ServeError::Rmd(e) => match e {
                RmdError::Parse(_) => "parse",
                RmdError::InvalidMachine(_) => "invalid_machine",
                RmdError::LimitExceeded { .. } => "limit_exceeded",
                RmdError::DegenerateInput(_) => "degenerate_input",
                RmdError::VerificationFailed(_) => "verification_failed",
                RmdError::Io(_) => "io",
                RmdError::BudgetExhausted { .. } => "budget_exhausted",
                RmdError::Unschedulable { .. } => "unschedulable",
                _ => "rmd_error",
            },
            ServeError::Timeout { .. } => "timeout",
            ServeError::Overloaded { .. } => "overloaded",
            ServeError::ShuttingDown => "shutting_down",
            ServeError::Panicked { .. } => "panicked",
        }
    }

    /// The human-readable detail string for this error.
    pub fn detail(&self) -> String {
        match self {
            ServeError::Malformed { detail } => detail.clone(),
            ServeError::Oversized { limit, actual } => {
                format!("frame of {actual} bytes exceeds the {limit}-byte limit")
            }
            ServeError::UnknownType { got } => format!("unknown request type {got:?}"),
            ServeError::BadRequest { detail } => detail.clone(),
            ServeError::UnknownFingerprint { got } => {
                format!("no machine cached under fingerprint {got:?}")
            }
            ServeError::Uncertified { fingerprint } => format!(
                "no certificate vouches for machine {fingerprint:?}; \
                 run `rmd certify` first or serve with --uncertified"
            ),
            ServeError::Rmd(e) => e.to_string(),
            ServeError::Timeout { deadline_ms } => {
                format!("request missed its {deadline_ms}ms deadline")
            }
            ServeError::Overloaded { retry_after_ms } => {
                format!("admission queue full; retry after {retry_after_ms}ms")
            }
            ServeError::ShuttingDown => "daemon is draining; request rejected".to_string(),
            ServeError::Panicked { detail } => {
                format!("request panicked and was isolated: {detail}")
            }
        }
    }

    /// Renders the full error reply line (no trailing newline):
    /// `{"ok":false,"id":…,"error":{…}}` plus `retry_after_ms` for
    /// [`ServeError::Overloaded`].
    pub fn to_reply(&self, id: Option<&str>) -> String {
        let mut out = String::with_capacity(96);
        out.push_str("{\"ok\":false,\"id\":");
        out.push_str(id.unwrap_or("null"));
        out.push_str(",\"error\":{\"code\":");
        out.push_str(&self.code().to_string());
        out.push_str(",\"kind\":");
        rmd_obs::export::push_json_string(&mut out, self.kind());
        out.push_str(",\"detail\":");
        rmd_obs::export::push_json_string(&mut out, &self.detail());
        out.push('}');
        if let ServeError::Overloaded { retry_after_ms } = self {
            out.push_str(",\"retry_after_ms\":");
            out.push_str(&retry_after_ms.to_string());
        }
        out.push('}');
        out
    }
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({}): {}", self.kind(), self.code(), self.detail())
    }
}

impl std::error::Error for ServeError {}

impl From<RmdError> for ServeError {
    fn from(e: RmdError) -> Self {
        ServeError::Rmd(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rmd_core::Limits;
    use rmd_machine::MachineBuilder;

    fn all_rmd_variants() -> Vec<RmdError> {
        // One representative per RmdError variant, built through real
        // constructors where the inner types are not directly
        // constructible.
        let parse = rmd_machine::mdl::parse_machine("machine {").unwrap_err();
        let invalid = {
            let mut b = MachineBuilder::new("dup");
            b.resource("r");
            b.resource("r");
            b.build().unwrap_err()
        };
        let degenerate = rmd_core::try_reduce(
            &rmd_machine::models::example_machine(),
            rmd_core::Objective::ResUses,
            &rmd_core::ReduceOptions {
                max_steps: Some(0),
                ..Default::default()
            },
        )
        .unwrap_err();
        let limits = Limits {
            max_resources: 0,
            ..Limits::default()
        };
        let limited = limits
            .validate(&rmd_machine::models::example_machine())
            .unwrap_err();
        vec![
            RmdError::Parse(parse),
            RmdError::InvalidMachine(invalid),
            limited,
            RmdError::DegenerateInput("empty".to_string()),
            degenerate,
            RmdError::Unschedulable { max_ii: 4096 },
            RmdError::Io("pipe closed".to_string()),
        ]
    }

    #[test]
    fn rmd_taxonomy_maps_to_distinct_codes() {
        let variants = all_rmd_variants();
        let mut seen = std::collections::BTreeSet::new();
        for e in variants {
            let s = ServeError::from(e);
            assert!(seen.insert((s.code(), s.kind())), "duplicate: {s}");
            assert!((110..130).contains(&s.code()), "{s}");
        }
        // BudgetExhausted is produced by try_reduce with max_steps 0 in
        // all_rmd_variants (as `degenerate` or budget depending on the
        // pipeline's first charge); pin its mapping explicitly too.
        let s = ServeError::from(RmdError::BudgetExhausted { steps: 7 });
        assert_eq!((s.code(), s.kind()), (120, "budget_exhausted"));
    }

    #[test]
    fn reply_shape_is_stable() {
        let e = ServeError::UnknownType {
            got: "frobnicate".to_string(),
        };
        assert_eq!(
            e.to_reply(Some("3")),
            "{\"ok\":false,\"id\":3,\"error\":{\"code\":102,\"kind\":\"unknown_type\",\
             \"detail\":\"unknown request type \\\"frobnicate\\\"\"}}"
        );
        let e = ServeError::Overloaded { retry_after_ms: 50 };
        let r = e.to_reply(None);
        assert!(r.contains("\"id\":null"), "{r}");
        assert!(r.ends_with(",\"retry_after_ms\":50}"), "{r}");
        let v = serde_json::from_str(&r).expect("reply must be valid JSON");
        assert_eq!(
            v.get("error").and_then(|e| e.get("kind")).and_then(|k| k.as_str()),
            Some("overloaded")
        );
    }

    #[test]
    fn every_kind_renders_valid_json() {
        let errs = vec![
            ServeError::Malformed {
                detail: "bad \"quote\"".to_string(),
            },
            ServeError::Oversized {
                limit: 10,
                actual: 20,
            },
            ServeError::UnknownType {
                got: "x\ny".to_string(),
            },
            ServeError::BadRequest {
                detail: "missing nodes".to_string(),
            },
            ServeError::UnknownFingerprint {
                got: "rmd-0000".to_string(),
            },
            ServeError::Uncertified {
                fingerprint: "rmd-0000".to_string(),
            },
            ServeError::Timeout { deadline_ms: 5 },
            ServeError::Overloaded { retry_after_ms: 1 },
            ServeError::ShuttingDown,
            ServeError::Panicked {
                detail: "chaos".to_string(),
            },
        ];
        for e in errs {
            let r = e.to_reply(Some("\"req-1\""));
            let v = serde_json::from_str(&r).unwrap_or_else(|p| panic!("{r}: {p}"));
            let code = v
                .get("error")
                .and_then(|e| e.get("code"))
                .and_then(|c| c.as_u64())
                .expect("code");
            assert_eq!(code, e.code() as u64);
        }
    }
}
