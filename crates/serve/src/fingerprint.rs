//! Machine fingerprints: the cache key for reduced descriptions.
//!
//! A fingerprint is an FNV-1a 64-bit hash of the *canonical MDL
//! rendering* of a machine, rendered as `rmd-` plus 16 hex digits. Two
//! submissions of the same machine — whether by built-in model name or
//! by equivalent `.mdl` source — therefore share one cache entry, and a
//! client can precompute the key offline with the `rmd render` output.
//!
//! The hash itself lives in `rmd-machine` ([`content_fingerprint`]) so
//! that `rmd certify` and `rmd lint` key their artifacts identically;
//! this module re-exposes it under the name the serve crate has always
//! used.

use rmd_machine::{content_fingerprint, MachineDescription};

/// The fingerprint of `machine`: `rmd-` + 16 lowercase hex digits of
/// the FNV-1a hash of its canonical MDL rendering.
pub fn fingerprint(machine: &MachineDescription) -> String {
    content_fingerprint(machine)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rmd_machine::{mdl, models};

    #[test]
    fn deterministic_and_model_sensitive() {
        let a = fingerprint(&models::example_machine());
        let b = fingerprint(&models::example_machine());
        assert_eq!(a, b);
        assert_eq!(a.len(), 4 + 16);
        assert!(a.starts_with("rmd-"));
        assert_ne!(a, fingerprint(&models::cydra5_subset()));
    }

    #[test]
    fn roundtrips_through_mdl_source() {
        // Parsing the canonical rendering back yields the same key.
        let m = models::cydra5_subset();
        let src = mdl::print(&m);
        let (parsed, _) = mdl::parse_machine(&src).expect("test setup");
        assert_eq!(fingerprint(&m), fingerprint(&parsed));
    }
}
