//! The crash flight recorder: a fixed-size ring of recent request
//! summaries that can be dumped as a self-describing JSON black box.
//!
//! The engine records one [`FlightEntry`] per request — id, kind,
//! fingerprint, latency, outcome — into a ring that overwrites oldest
//! first, so the recorder's memory is bounded no matter how long the
//! daemon runs. When something goes wrong (a `catch_unwind` trips and
//! quarantines a cache entry, or SIGTERM drains the daemon), the ring
//! is rendered as one JSON object whose `entries` array reads oldest →
//! newest: the last N requests leading up to the incident, which is
//! exactly what a post-mortem needs. Recording is plain single-threaded
//! code on the engine's request thread — no locks anywhere — and
//! rendering never allocates more than the output string.
//!
//! Dumps are *queued* on the recorder rather than printed, so the
//! transport layer decides where they go (stderr for the daemon) and
//! in-process tests can assert on every dump an injected panic
//! produced.

use rmd_obs::export::push_json_string;
use std::fmt::Write as _;

/// Schema tag embedded in every dump, so readers can detect format
/// drift.
pub const FLIGHT_SCHEMA: &str = "rmd-flight/1";

/// Default number of request summaries the ring retains.
pub const DEFAULT_FLIGHT_CAPACITY: usize = 64;

/// One request summary retained by the recorder.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FlightEntry {
    /// The engine's request index (monotonic admission order).
    pub req: u64,
    /// The client-chosen id, pre-rendered as a JSON token.
    pub id: Option<String>,
    /// Request kind (`"schedule"`, `"suite"`, …, or `"invalid"` when
    /// the body never parsed).
    pub kind: &'static str,
    /// Fingerprint of the machine the request touched, if any.
    pub fingerprint: Option<String>,
    /// Wall-clock latency from admission to reply, nanoseconds.
    pub latency_ns: u64,
    /// `"ok"` or the typed error kind (`"timeout"`, `"panicked"`, …).
    pub outcome: String,
}

/// A fixed-size ring of [`FlightEntry`] values plus the queue of dumps
/// tripped since the last [`take_dumps`](FlightRecorder::take_dumps).
#[derive(Debug)]
pub struct FlightRecorder {
    capacity: usize,
    entries: Vec<FlightEntry>,
    /// Index the next entry overwrites once the ring is full.
    next: usize,
    recorded: u64,
    dumps: Vec<String>,
}

impl FlightRecorder {
    /// Creates a recorder retaining the last `capacity` requests
    /// (clamped to at least 1).
    pub fn new(capacity: usize) -> Self {
        FlightRecorder {
            capacity: capacity.max(1),
            entries: Vec::new(),
            next: 0,
            recorded: 0,
            dumps: Vec::new(),
        }
    }

    /// Records one request summary, overwriting the oldest once full.
    pub fn record(&mut self, e: FlightEntry) {
        self.recorded += 1;
        if self.entries.len() < self.capacity {
            self.entries.push(e);
        } else {
            self.entries[self.next] = e;
            self.next = (self.next + 1) % self.capacity;
        }
    }

    /// Total requests ever recorded (not just the retained window).
    pub fn recorded(&self) -> u64 {
        self.recorded
    }

    /// The retained entries, oldest first.
    pub fn entries(&self) -> impl Iterator<Item = &FlightEntry> {
        let (older, newer) = self.entries.split_at(self.next);
        newer.iter().chain(older.iter())
    }

    /// Renders the black box as one self-describing JSON object.
    pub fn render_dump(&self, reason: &str) -> String {
        let mut out = String::with_capacity(128 + 96 * self.entries.len());
        out.push_str("{\"flight_recorder\":");
        push_json_string(&mut out, FLIGHT_SCHEMA);
        out.push_str(",\"reason\":");
        push_json_string(&mut out, reason);
        let _ = write!(
            out,
            ",\"recorded\":{},\"capacity\":{},\"entries\":[",
            self.recorded, self.capacity
        );
        for (i, e) in self.entries().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{{\"req\":{},\"id\":", e.req);
            out.push_str(e.id.as_deref().unwrap_or("null"));
            out.push_str(",\"kind\":");
            push_json_string(&mut out, e.kind);
            out.push_str(",\"fingerprint\":");
            match &e.fingerprint {
                Some(fp) => push_json_string(&mut out, fp),
                None => out.push_str("null"),
            }
            let _ = write!(out, ",\"latency_ns\":{},\"outcome\":", e.latency_ns);
            push_json_string(&mut out, &e.outcome);
            out.push('}');
        }
        out.push_str("]}");
        out
    }

    /// Renders a dump for `reason` and queues it for the transport
    /// layer to publish.
    pub fn trip(&mut self, reason: &str) {
        let dump = self.render_dump(reason);
        self.dumps.push(dump);
    }

    /// Takes every dump tripped since the last call, oldest first.
    pub fn take_dumps(&mut self) -> Vec<String> {
        std::mem::take(&mut self.dumps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::Value;

    fn entry(req: u64, outcome: &str) -> FlightEntry {
        FlightEntry {
            req,
            id: Some(format!("{req}")),
            kind: "schedule",
            fingerprint: Some("rmd-test".to_string()),
            latency_ns: 1000 + req,
            outcome: outcome.to_string(),
        }
    }

    #[test]
    fn ring_overwrites_oldest_first() {
        let mut fr = FlightRecorder::new(3);
        for i in 0..5 {
            fr.record(entry(i, "ok"));
        }
        let reqs: Vec<u64> = fr.entries().map(|e| e.req).collect();
        assert_eq!(reqs, vec![2, 3, 4]);
        assert_eq!(fr.recorded(), 5);
    }

    #[test]
    fn dump_is_self_describing_parseable_json() {
        let mut fr = FlightRecorder::new(4);
        fr.record(entry(0, "ok"));
        fr.record(FlightEntry {
            req: 1,
            id: None,
            kind: "invalid",
            fingerprint: None,
            latency_ns: 7,
            outcome: "malformed".to_string(),
        });
        let dump = fr.render_dump("panic");
        let v = serde_json::from_str(&dump).expect("dump parses");
        assert_eq!(
            v.get("flight_recorder").and_then(Value::as_str),
            Some(FLIGHT_SCHEMA)
        );
        assert_eq!(v.get("reason").and_then(Value::as_str), Some("panic"));
        assert_eq!(v.get("recorded").and_then(Value::as_u64), Some(2));
        let entries = v.get("entries").and_then(Value::as_array).unwrap();
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].get("req").and_then(Value::as_u64), Some(0));
        assert!(entries[1].get("id").unwrap().as_str().is_none()); // null
        assert_eq!(
            entries[1].get("outcome").and_then(Value::as_str),
            Some("malformed")
        );
    }

    #[test]
    fn trip_queues_dumps_until_taken() {
        let mut fr = FlightRecorder::new(2);
        fr.record(entry(0, "panicked"));
        fr.trip("panic");
        fr.record(entry(1, "ok"));
        fr.trip("drain");
        let dumps = fr.take_dumps();
        assert_eq!(dumps.len(), 2);
        assert!(dumps[0].contains("\"reason\":\"panic\""));
        assert!(dumps[1].contains("\"reason\":\"drain\""));
        assert!(fr.take_dumps().is_empty());
    }
}
