//! rmd-serve — a fault-isolated scheduling daemon.
//!
//! `rmd serve` accepts line-delimited JSON requests over stdin or a
//! unix socket: submit a machine description, schedule a dependence
//! graph or a generated loop suite against its cached reduced
//! description, query status, or shut down. The daemon is built around
//! one invariant: **every successful response is byte-identical to
//! what the offline `rmd` CLI computes on the same inputs**. The
//! robustness layer — deadlines, step budgets, panic quarantine,
//! bounded admission with shedding, graceful drain, seeded chaos —
//! changes *availability* (a request may be refused with a typed
//! error), never *results*.
//!
//! Module map:
//!
//! - [`proto`] — the line protocol: framing, request grammar, replies.
//! - [`engine`] — the request engine: caching, scheduling, isolation.
//! - [`daemon`] — transports, admission queue, drain, metrics flush.
//! - [`error`] — the typed error taxonomy and its JSON rendering.
//! - [`chaos`] — seeded fault injection reusing rmd-fault generators.
//! - [`signal`] — SIGTERM flag (the workspace's one unsafe block).
//! - [`flight`] — the crash flight recorder (black-box ring + dumps).
//! - [`mod@fingerprint`] — machine fingerprints keying the cache.
//! - [`loadgen`] — the `rmd bench serve` in-process load driver.

#![warn(missing_docs)]

pub mod chaos;
pub mod daemon;
pub mod engine;
pub mod error;
pub mod fingerprint;
pub mod flight;
pub mod loadgen;
pub mod proto;
pub mod signal;

pub use chaos::{Chaos, ChaosAction};
pub use daemon::{run, ServeOptions, ServeSummary, SharedWriter};
pub use engine::{EngineConfig, ServeEngine};
pub use flight::{FlightEntry, FlightRecorder};
pub use error::ServeError;
pub use fingerprint::fingerprint;
pub use loadgen::{run_load, LoadOptions, LoadReport};
