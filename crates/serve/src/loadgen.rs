//! In-process load driver behind `rmd bench serve`.
//!
//! Drives a [`ServeEngine`] with a pipelined request stream for a real
//! machine — one machine submission, then a mix of schedule requests
//! over chain and recurrence graphs built from the machine's own
//! operations — and reports throughput plus p50/p99 handler latency
//! from the engine's rmd-obs histogram. A second burst phase replays a
//! slice of the stream through the bounded admission queue with a tiny
//! cap to exercise (and count) overload shedding.

use crate::daemon::{serve_stream, ServeOptions, SharedWriter};
use crate::engine::{EngineConfig, ServeEngine};
use crate::error::ServeError;
use rmd_machine::MachineDescription;
use rmd_obs::export::push_json_string;
use std::io::{self, Cursor, Write};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Load-driver knobs.
#[derive(Clone, Debug)]
pub struct LoadOptions {
    /// Number of schedule requests in the timed phase.
    pub requests: usize,
    /// Admission-queue cap used by the shedding burst phase.
    pub queue_cap: usize,
    /// Number of frames replayed in the shedding burst phase.
    pub burst: usize,
}

impl Default for LoadOptions {
    fn default() -> Self {
        LoadOptions {
            requests: 200,
            queue_cap: 4,
            burst: 64,
        }
    }
}

/// What the load run measured.
#[derive(Clone, Copy, Debug, Default)]
pub struct LoadReport {
    /// Requests answered in the timed phase (machine + schedules).
    pub requests: u64,
    /// Successful replies in the timed phase.
    pub ok: u64,
    /// Typed error replies in the timed phase.
    pub errors: u64,
    /// Requests shed by the burst phase's bounded queue.
    pub shed: u64,
    /// Wall time of the timed phase, nanoseconds.
    pub elapsed_ns: u64,
    /// Timed-phase throughput.
    pub req_per_s: f64,
    /// Median handler latency, nanoseconds.
    pub p50_ns: u64,
    /// 99th-percentile handler latency, nanoseconds.
    pub p99_ns: u64,
}

impl LoadReport {
    /// Renders the report as a JSON object (for the bench record).
    pub fn to_json(&self) -> String {
        let mut s = String::from("{");
        s.push_str(&format!("\"requests\": {}", self.requests));
        s.push_str(&format!(", \"ok\": {}", self.ok));
        s.push_str(&format!(", \"errors\": {}", self.errors));
        s.push_str(&format!(", \"shed\": {}", self.shed));
        s.push_str(&format!(", \"elapsed_ns\": {}", self.elapsed_ns));
        s.push_str(&format!(", \"req_per_s\": {:.1}", self.req_per_s));
        s.push_str(&format!(", \"p50_ns\": {}", self.p50_ns));
        s.push_str(&format!(", \"p99_ns\": {}", self.p99_ns));
        s.push('}');
        s
    }
}

/// A reply sink that only counts lines (replies are not kept).
#[derive(Clone, Default)]
struct CountingSink(Arc<Mutex<u64>>);

impl Write for CountingSink {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        *self.0.lock().unwrap() += buf.iter().filter(|&&b| b == b'\n').count() as u64;
        Ok(buf.len())
    }
    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

fn machine_line(machine: &MachineDescription) -> String {
    let mut line = String::from("{\"type\": \"machine\", \"id\": 0, \"mdl\": ");
    push_json_string(&mut line, &rmd_machine::mdl::print(machine));
    line.push('}');
    line
}

/// Builds the pipelined request stream: one machine frame, then
/// alternating chain and recurrence schedule frames over the machine's
/// own operations.
fn request_lines(machine: &MachineDescription, fp: &str, n: usize) -> Vec<String> {
    let ops: Vec<&str> = machine
        .operations()
        .iter()
        .map(|op| op.name())
        .collect();
    let pick = |i: usize| ops[i % ops.len()];
    let mut lines = Vec::with_capacity(n);
    for i in 0..n {
        let (a, b, c) = (pick(i), pick(i + 1), pick(i + 2));
        let edges = if i % 2 == 0 {
            // Chain: a -> b -> c.
            "[[0,1,2,0],[1,2,3,0]]".to_string()
        } else {
            // Recurrence: a -> b -> c -> a with distance 1.
            "[[0,1,2,0],[1,2,2,0],[2,0,2,1]]".to_string()
        };
        let mut line = format!("{{\"type\": \"schedule\", \"id\": {}, \"fingerprint\": ", i + 1);
        push_json_string(&mut line, fp);
        line.push_str(", \"nodes\": [");
        for (j, name) in [a, b, c].iter().enumerate() {
            if j > 0 {
                line.push_str(", ");
            }
            push_json_string(&mut line, name);
        }
        line.push_str("], \"edges\": ");
        line.push_str(&edges);
        line.push('}');
        lines.push(line);
    }
    lines
}

/// Runs the load workload against `machine` and reports throughput,
/// tail latency, and burst-phase shed count.
///
/// # Errors
///
/// Fails only if the machine itself is rejected by the engine (the
/// same validation the offline CLI applies).
pub fn run_load(machine: &MachineDescription, opts: &LoadOptions) -> Result<LoadReport, ServeError> {
    let mut engine = ServeEngine::new(EngineConfig::default());
    let (reply, _) = engine.handle_line(&machine_line(machine), Instant::now());
    let parsed = serde_json::from_str(&reply)
        .map_err(|e| ServeError::Malformed { detail: e.to_string() })?;
    if parsed.get("ok").and_then(|v| v.as_bool()) != Some(true) {
        return Err(ServeError::BadRequest {
            detail: format!("machine rejected: {reply}"),
        });
    }
    let fp = parsed
        .get("fingerprint")
        .and_then(|v| v.as_str())
        .ok_or_else(|| ServeError::BadRequest {
            detail: "machine reply lacks fingerprint".into(),
        })?
        .to_string();

    let lines = request_lines(machine, &fp, opts.requests);
    let start = Instant::now();
    for line in &lines {
        let _ = engine.handle_line(line, Instant::now());
    }
    let elapsed = start.elapsed();
    let elapsed_ns = u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX);
    let answered = engine.counter("serve.requests");
    let ok = engine.counter("serve.ok");
    let errors = engine.counter("serve.errors");
    let (p50, p99) = engine
        .metrics()
        .histogram("serve.latency_ns")
        .map(|h| (h.approx_quantile(0.5), h.approx_quantile(0.99)))
        .unwrap_or((0, 0));

    // Burst phase: replay a slice through the bounded admission queue
    // with a tiny cap so overload shedding actually fires.
    let burst = lines.iter().take(opts.burst).cloned().collect::<Vec<_>>();
    let daemon_opts = ServeOptions {
        queue_cap: opts.queue_cap,
        ..ServeOptions::default()
    };
    let sink = CountingSink::default();
    let writer: SharedWriter = Arc::new(Mutex::new(Box::new(sink.clone())));
    serve_stream(
        Cursor::new(burst.join("\n").into_bytes()),
        writer,
        &mut engine,
        &daemon_opts,
    );
    let shed = engine.counter("serve.shed");

    Ok(LoadReport {
        requests: answered,
        ok,
        errors,
        shed,
        elapsed_ns,
        req_per_s: if elapsed_ns == 0 {
            0.0
        } else {
            opts.requests as f64 * 1e9 / elapsed_ns as f64
        },
        p50_ns: p50,
        p99_ns: p99,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rmd_machine::models;

    #[test]
    fn load_run_reports_throughput() {
        let m = models::example_machine();
        let report = run_load(
            &m,
            &LoadOptions {
                requests: 24,
                queue_cap: 4,
                burst: 16,
            },
        )
        .expect("load run");
        // machine frame + 24 schedules, plus whatever the burst phase
        // managed to admit before shedding.
        assert!(report.requests >= 25, "answered {}", report.requests);
        assert!(report.ok >= 25, "ok {}", report.ok);
        assert_eq!(report.errors, 0);
        assert!(report.req_per_s > 0.0);
        let json = report.to_json();
        assert!(serde_json::from_str(&json).is_ok(), "{json}");
    }
}
