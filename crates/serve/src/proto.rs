//! The `rmd serve` wire protocol: one JSON object per line, in both
//! directions.
//!
//! # Grammar
//!
//! ```text
//! frame    := object NL                    ; exactly one object per line
//! request  := { "type": kind, ["id": string|number,]
//!               ["deadline_ms": number,] ["trace": bool,]
//!               ...kind-specific members }
//! kind     := "machine" | "schedule" | "suite" | "status" | "metrics"
//!           | "shutdown"
//! reply    := { "ok": true, "id": id|null, "type": kind, ... }
//!           | { "ok": false, "id": id|null,
//!               "error": { "code": number, "kind": string, "detail": string },
//!               ["retry_after_ms": number] }
//! ```
//!
//! Replies carry the request's `id` verbatim (or `null` when the frame
//! was too broken to extract one), so pipelined clients can match them
//! even though the daemon already answers strictly in admission order.

use crate::error::ServeError;
use rmd_obs::export::push_json_string;
use rmd_sched::DepKind;
use serde_json::Value;

/// Default per-frame size limit (bytes). A megabyte comfortably holds
/// the largest `.mdl` sources while bounding a hostile client's memory.
pub const DEFAULT_MAX_FRAME_BYTES: usize = 1 << 20;

/// Upper bound on the `loops` member of a suite request.
pub const MAX_SUITE_LOOPS: usize = 100_000;

/// Where a `machine` request's description comes from.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MachineSource {
    /// A built-in model name (`fig1`, `cydra5-subset`, …).
    Model(String),
    /// Inline MDL source text.
    Mdl(String),
}

/// One dependence edge of a `schedule` request:
/// `[from, to, delay, distance]` with an optional fifth member naming
/// the kind (`"flow"` default, `"anti"`, `"output"`, `"memory"`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EdgeSpec {
    /// Source node index into the request's `nodes` array.
    pub from: usize,
    /// Destination node index.
    pub to: usize,
    /// Latency: `t(to) ≥ t(from) + delay − II·distance`.
    pub delay: i32,
    /// Iteration distance.
    pub distance: u32,
    /// Dependence kind.
    pub kind: DepKind,
}

/// A parsed request body.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// Submit a machine; the daemon reduces (with fallback unless
    /// `strict`), verifies, and caches it under its fingerprint.
    Machine {
        /// Model name or inline MDL.
        source: MachineSource,
        /// Fail with a typed error instead of falling back to the
        /// original tables when reduction or verification fails.
        strict: bool,
        /// Reduction step budget (maps to [`rmd_core::ReduceOptions`]).
        max_steps: Option<u64>,
    },
    /// Schedule one dependence graph against a cached machine.
    Schedule {
        /// Fingerprint of a previously submitted machine.
        fingerprint: String,
        /// Operation names, one per node.
        nodes: Vec<String>,
        /// Dependence edges.
        edges: Vec<EdgeSpec>,
        /// Scheduler budget ratio override.
        budget_ratio: Option<f64>,
        /// Cap on the initiation intervals attempted.
        max_ii: Option<u32>,
    },
    /// Schedule a generated loop suite against a cached machine.
    Suite {
        /// Fingerprint of a previously submitted machine.
        fingerprint: String,
        /// Number of loops to generate.
        loops: usize,
        /// Suite generator seed.
        seed: u64,
        /// Worker thread cap (clamped by the daemon's own limit).
        threads: Option<usize>,
    },
    /// Report daemon counters.
    Status,
    /// Snapshot the full metric registry (counters, gauges, latency
    /// histograms) without pausing request processing.
    Metrics,
    /// Begin a graceful drain.
    Shutdown,
}

/// A framed request: the client-chosen id and deadline survive even
/// when the body failed to parse, so the error reply can carry them.
#[derive(Clone, Debug)]
pub struct Frame {
    /// The request's `id` member, pre-rendered as a JSON token.
    pub id: Option<String>,
    /// The request's `deadline_ms` member.
    pub deadline_ms: Option<u64>,
    /// The request's `trace` member: when `true`, the reply carries
    /// the request's span tree as an inline Chrome-trace slice.
    pub trace: bool,
    /// The parsed body, or the typed error to reply with.
    pub body: Result<Request, ServeError>,
}

impl Frame {
    /// A frame that failed before parsing (no id recoverable).
    pub fn broken(e: ServeError) -> Self {
        Frame {
            id: None,
            deadline_ms: None,
            trace: false,
            body: Err(e),
        }
    }
}

/// Renders an `id` member back into a JSON token. Only strings and
/// numbers are accepted — other types would make reply matching
/// ambiguous.
fn render_id(v: &Value) -> Result<String, ServeError> {
    match v {
        Value::String(s) => {
            let mut out = String::with_capacity(s.len() + 2);
            push_json_string(&mut out, s);
            Ok(out)
        }
        Value::Number(n) if n.fract() == 0.0 => Ok(format!("{}", *n as i64)),
        Value::Number(n) => Ok(format!("{n}")),
        _ => Err(ServeError::BadRequest {
            detail: "id must be a string or number".to_string(),
        }),
    }
}

fn need_str(v: &Value, key: &str) -> Result<String, ServeError> {
    v.get(key)
        .and_then(Value::as_str)
        .map(str::to_string)
        .ok_or_else(|| ServeError::BadRequest {
            detail: format!("missing or non-string {key:?} member"),
        })
}

fn opt_u64(v: &Value, key: &str) -> Result<Option<u64>, ServeError> {
    match v.get(key) {
        None => Ok(None),
        Some(m) => m.as_u64().map(Some).ok_or_else(|| ServeError::BadRequest {
            detail: format!("{key:?} must be a non-negative integer"),
        }),
    }
}

fn opt_bool(v: &Value, key: &str) -> Result<bool, ServeError> {
    match v.get(key) {
        None => Ok(false),
        Some(b) => b.as_bool().ok_or_else(|| ServeError::BadRequest {
            detail: format!("{key:?} must be a boolean"),
        }),
    }
}

fn parse_edge(i: usize, v: &Value) -> Result<EdgeSpec, ServeError> {
    let bad = |detail: String| ServeError::BadRequest { detail };
    let parts = v
        .as_array()
        .ok_or_else(|| bad(format!("edge {i} must be an array")))?;
    if !(parts.len() == 4 || parts.len() == 5) {
        return Err(bad(format!(
            "edge {i} must be [from, to, delay, distance] with an optional kind"
        )));
    }
    let idx = |j: usize, what: &str| {
        parts[j]
            .as_u64()
            .map(|n| n as usize)
            .ok_or_else(|| bad(format!("edge {i}: {what} must be a non-negative integer")))
    };
    let from = idx(0, "from")?;
    let to = idx(1, "to")?;
    let delay = parts[2]
        .as_i64()
        .and_then(|d| i32::try_from(d).ok())
        .ok_or_else(|| bad(format!("edge {i}: delay must be an i32 integer")))?;
    let distance = parts[3]
        .as_u64()
        .and_then(|d| u32::try_from(d).ok())
        .ok_or_else(|| bad(format!("edge {i}: distance must be a u32 integer")))?;
    let kind = match parts.get(4) {
        None => DepKind::Flow,
        Some(k) => match k.as_str() {
            Some("flow") => DepKind::Flow,
            Some("anti") => DepKind::Anti,
            Some("output") => DepKind::Output,
            Some("memory") => DepKind::Memory,
            _ => {
                return Err(bad(format!(
                    "edge {i}: kind must be \"flow\", \"anti\", \"output\", or \"memory\""
                )))
            }
        },
    };
    Ok(EdgeSpec {
        from,
        to,
        delay,
        distance,
        kind,
    })
}

fn parse_body(v: &Value) -> Result<Request, ServeError> {
    let ty = v
        .get("type")
        .and_then(Value::as_str)
        .ok_or_else(|| ServeError::BadRequest {
            detail: "missing or non-string \"type\" member".to_string(),
        })?;
    match ty {
        "machine" => {
            let model = v.get("model").and_then(Value::as_str);
            let mdl = v.get("mdl").and_then(Value::as_str);
            let source = match (model, mdl) {
                (Some(m), None) => MachineSource::Model(m.to_string()),
                (None, Some(s)) => MachineSource::Mdl(s.to_string()),
                _ => {
                    return Err(ServeError::BadRequest {
                        detail: "machine request needs exactly one of \"model\" or \"mdl\""
                            .to_string(),
                    })
                }
            };
            let strict = match v.get("strict") {
                None => false,
                Some(b) => b.as_bool().ok_or_else(|| ServeError::BadRequest {
                    detail: "\"strict\" must be a boolean".to_string(),
                })?,
            };
            Ok(Request::Machine {
                source,
                strict,
                max_steps: opt_u64(v, "max_steps")?,
            })
        }
        "schedule" => {
            let fingerprint = need_str(v, "fingerprint")?;
            let nodes: Vec<String> = v
                .get("nodes")
                .and_then(Value::as_array)
                .ok_or_else(|| ServeError::BadRequest {
                    detail: "missing or non-array \"nodes\" member".to_string(),
                })?
                .iter()
                .map(|n| {
                    n.as_str().map(str::to_string).ok_or_else(|| {
                        ServeError::BadRequest {
                            detail: "every node must be an operation name string".to_string(),
                        }
                    })
                })
                .collect::<Result<_, _>>()?;
            if nodes.is_empty() {
                return Err(ServeError::BadRequest {
                    detail: "\"nodes\" must not be empty".to_string(),
                });
            }
            let edges = match v.get("edges") {
                None => Vec::new(),
                Some(e) => e
                    .as_array()
                    .ok_or_else(|| ServeError::BadRequest {
                        detail: "\"edges\" must be an array".to_string(),
                    })?
                    .iter()
                    .enumerate()
                    .map(|(i, e)| parse_edge(i, e))
                    .collect::<Result<Vec<_>, _>>()?,
            };
            for e in &edges {
                if e.from >= nodes.len() || e.to >= nodes.len() {
                    return Err(ServeError::BadRequest {
                        detail: format!(
                            "edge [{}, {}] references a node out of range (have {})",
                            e.from,
                            e.to,
                            nodes.len()
                        ),
                    });
                }
            }
            let budget_ratio = match v.get("budget_ratio") {
                None => None,
                Some(b) => {
                    let r = b.as_f64().ok_or_else(|| ServeError::BadRequest {
                        detail: "\"budget_ratio\" must be a number".to_string(),
                    })?;
                    if !(r.is_finite() && r > 0.0) {
                        return Err(ServeError::BadRequest {
                            detail: "\"budget_ratio\" must be finite and positive".to_string(),
                        });
                    }
                    Some(r)
                }
            };
            let max_ii = opt_u64(v, "max_ii")?
                .map(|n| {
                    u32::try_from(n).map_err(|_| ServeError::BadRequest {
                        detail: "\"max_ii\" must fit in u32".to_string(),
                    })
                })
                .transpose()?;
            Ok(Request::Schedule {
                fingerprint,
                nodes,
                edges,
                budget_ratio,
                max_ii,
            })
        }
        "suite" => {
            let fingerprint = need_str(v, "fingerprint")?;
            let loops = opt_u64(v, "loops")?.unwrap_or(64) as usize;
            if loops == 0 || loops > MAX_SUITE_LOOPS {
                return Err(ServeError::BadRequest {
                    detail: format!("\"loops\" must be in 1..={MAX_SUITE_LOOPS}"),
                });
            }
            let seed = opt_u64(v, "seed")?.unwrap_or(0xC5);
            let threads = opt_u64(v, "threads")?.map(|n| n as usize);
            Ok(Request::Suite {
                fingerprint,
                loops,
                seed,
                threads,
            })
        }
        "status" => Ok(Request::Status),
        "metrics" => Ok(Request::Metrics),
        "shutdown" => Ok(Request::Shutdown),
        other => Err(ServeError::UnknownType {
            got: other.to_string(),
        }),
    }
}

/// Parses one protocol line into a [`Frame`]. Never panics: every
/// malformation maps to a typed error carried in the frame body.
pub fn parse_frame(line: &str, max_bytes: usize) -> Frame {
    if line.len() > max_bytes {
        return Frame::broken(ServeError::Oversized {
            limit: max_bytes,
            actual: line.len(),
        });
    }
    let v = match serde_json::from_str(line) {
        Ok(v) => v,
        Err(e) => {
            return Frame::broken(ServeError::Malformed {
                detail: e.to_string(),
            })
        }
    };
    if !matches!(v, Value::Object(_)) {
        return Frame::broken(ServeError::Malformed {
            detail: "frame must be a JSON object".to_string(),
        });
    }
    let id = match v.get("id").map(render_id).transpose() {
        Ok(id) => id,
        Err(e) => {
            return Frame {
                id: None,
                deadline_ms: None,
                trace: false,
                body: Err(e),
            }
        }
    };
    let deadline_ms = match opt_u64(&v, "deadline_ms") {
        Ok(d) => d,
        Err(e) => {
            return Frame {
                id,
                deadline_ms: None,
                trace: false,
                body: Err(e),
            }
        }
    };
    let trace = match opt_bool(&v, "trace") {
        Ok(t) => t,
        Err(e) => {
            return Frame {
                id,
                deadline_ms,
                trace: false,
                body: Err(e),
            }
        }
    };
    let body = parse_body(&v);
    Frame {
        id,
        deadline_ms,
        trace,
        body,
    }
}

/// Incrementally builds one `{"ok":true,...}` reply line.
pub struct ReplyBuilder {
    out: String,
}

impl ReplyBuilder {
    /// Starts a success reply for request `id` of the given `type`.
    pub fn ok(id: Option<&str>, ty: &str) -> Self {
        let mut out = String::with_capacity(96);
        out.push_str("{\"ok\":true,\"id\":");
        out.push_str(id.unwrap_or("null"));
        out.push_str(",\"type\":");
        push_json_string(&mut out, ty);
        ReplyBuilder { out }
    }

    /// Appends a string member.
    pub fn str(mut self, key: &str, v: &str) -> Self {
        self.key(key);
        push_json_string(&mut self.out, v);
        self
    }

    /// Appends a numeric member.
    pub fn num(mut self, key: &str, v: u64) -> Self {
        self.key(key);
        self.out.push_str(&v.to_string());
        self
    }

    /// Appends a boolean member.
    pub fn bool(mut self, key: &str, v: bool) -> Self {
        self.key(key);
        self.out.push_str(if v { "true" } else { "false" });
        self
    }

    /// Appends an array-of-integers member.
    pub fn nums<I: IntoIterator<Item = u64>>(mut self, key: &str, vs: I) -> Self {
        self.key(key);
        self.out.push('[');
        for (i, v) in vs.into_iter().enumerate() {
            if i > 0 {
                self.out.push(',');
            }
            self.out.push_str(&v.to_string());
        }
        self.out.push(']');
        self
    }

    /// Appends a raw, pre-rendered JSON member.
    pub fn raw(mut self, key: &str, json: &str) -> Self {
        self.key(key);
        self.out.push_str(json);
        self
    }

    fn key(&mut self, key: &str) {
        self.out.push(',');
        push_json_string(&mut self.out, key);
        self.out.push(':');
    }

    /// Closes and returns the reply line (no trailing newline).
    pub fn finish(mut self) -> String {
        self.out.push('}');
        self.out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_machine_request() {
        let f = parse_frame(
            r#"{"type":"machine","model":"fig1","id":7,"deadline_ms":250}"#,
            DEFAULT_MAX_FRAME_BYTES,
        );
        assert_eq!(f.id.as_deref(), Some("7"));
        assert_eq!(f.deadline_ms, Some(250));
        assert!(!f.trace);
        assert_eq!(
            f.body.unwrap(),
            Request::Machine {
                source: MachineSource::Model("fig1".to_string()),
                strict: false,
                max_steps: None,
            }
        );
    }

    #[test]
    fn parses_schedule_request_with_edge_kinds() {
        let f = parse_frame(
            r#"{"type":"schedule","fingerprint":"rmd-x","nodes":["fadd","fmul"],
               "edges":[[0,1,7,0],[1,0,1,1,"anti"]],"id":"a b"}"#,
            DEFAULT_MAX_FRAME_BYTES,
        );
        assert_eq!(f.id.as_deref(), Some("\"a b\""));
        match f.body.unwrap() {
            Request::Schedule { nodes, edges, .. } => {
                assert_eq!(nodes, vec!["fadd", "fmul"]);
                assert_eq!(edges.len(), 2);
                assert_eq!(edges[0].kind, DepKind::Flow);
                assert_eq!(edges[1].kind, DepKind::Anti);
                assert_eq!(edges[1].distance, 1);
            }
            other => panic!("wrong request: {other:?}"),
        }
    }

    #[test]
    fn parses_metrics_and_trace_members() {
        let f = parse_frame(r#"{"type":"metrics","id":1}"#, DEFAULT_MAX_FRAME_BYTES);
        assert_eq!(f.body.unwrap(), Request::Metrics);
        assert!(!f.trace);

        let f = parse_frame(
            r#"{"type":"status","trace":true}"#,
            DEFAULT_MAX_FRAME_BYTES,
        );
        assert_eq!(f.body.unwrap(), Request::Status);
        assert!(f.trace);

        // A non-boolean trace member is a typed error, and the flag
        // stays off so the error reply is untraced.
        let f = parse_frame(r#"{"type":"status","trace":1}"#, DEFAULT_MAX_FRAME_BYTES);
        assert_eq!(f.body.unwrap_err().kind(), "bad_request");
        assert!(!f.trace);
    }

    #[test]
    fn frame_errors_are_typed() {
        let cases: Vec<(&str, &str)> = vec![
            (r#"{"type":"machine","model":"fig1""#, "malformed"), // truncated
            (r#"{"type":"status"} {"type":"status"}"#, "malformed"), // interleaved
            (r#"[1,2,3]"#, "malformed"),
            (r#"{"type":"frobnicate"}"#, "unknown_type"),
            (r#"{"type":"machine"}"#, "bad_request"),
            (r#"{"type":"machine","model":"a","mdl":"b"}"#, "bad_request"),
            (r#"{"type":"schedule","fingerprint":"f"}"#, "bad_request"),
            (
                r#"{"type":"schedule","fingerprint":"f","nodes":["a"],"edges":[[0,5,1,0]]}"#,
                "bad_request",
            ),
            (r#"{"type":"suite","fingerprint":"f","loops":0}"#, "bad_request"),
            (r#"{"type":"status","id":[1]}"#, "bad_request"),
            (r#"{"type":"status","deadline_ms":-4}"#, "bad_request"),
        ];
        for (line, kind) in cases {
            let f = parse_frame(line, DEFAULT_MAX_FRAME_BYTES);
            let e = f.body.expect_err(line);
            assert_eq!(e.kind(), kind, "{line}");
        }
        let f = parse_frame("{\"type\":\"status\"}", 4);
        assert_eq!(f.body.unwrap_err().kind(), "oversized");
    }

    #[test]
    fn reply_builder_emits_valid_json() {
        let r = ReplyBuilder::ok(Some("42"), "schedule")
            .str("fingerprint", "rmd-1234")
            .num("ii", 8)
            .bool("fallback", false)
            .nums("times", [0u64, 3, 9])
            .finish();
        let v = serde_json::from_str(&r).expect("valid JSON");
        assert_eq!(v.get("ok").and_then(Value::as_bool), Some(true));
        assert_eq!(v.get("id").and_then(Value::as_u64), Some(42));
        assert_eq!(
            v.get("times").and_then(Value::as_array).map(|a| a.len()),
            Some(3)
        );
    }
}
