//! SIGTERM handling without a libc crate dependency.
//!
//! The workspace is air-gapped, so no signal-handling crate is
//! available; instead this module declares the one `signal(2)` symbol
//! that `std` already links and installs a handler that does the only
//! async-signal-safe thing possible: set a process-global atomic flag.
//! The daemon's accept and drain loops poll the flag. This is the one
//! `unsafe` block in the workspace, confined to this module and gated
//! to unix targets.

use std::sync::atomic::{AtomicBool, Ordering};

/// Set by the SIGTERM handler; polled by the daemon loops.
static SIGTERM: AtomicBool = AtomicBool::new(false);

/// `SIGTERM` on every unix this workspace targets (POSIX fixes it).
#[cfg(unix)]
const SIGTERM_NUM: i32 = 15;

#[cfg(unix)]
#[allow(unsafe_code)]
mod imp {
    use super::{SIGTERM, SIGTERM_NUM};
    use std::sync::atomic::Ordering;

    extern "C" {
        /// `signal(2)` from the platform libc `std` already links.
        fn signal(signum: i32, handler: usize) -> usize;
    }

    /// The handler: only an atomic store, which is async-signal-safe.
    extern "C" fn on_sigterm(_signum: i32) {
        SIGTERM.store(true, Ordering::SeqCst);
    }

    pub(super) fn install() {
        // SAFETY: `signal` is the POSIX function with this exact
        // signature; the handler passed is an `extern "C" fn(i32)`
        // that performs a single lock-free atomic store.
        unsafe {
            signal(SIGTERM_NUM, on_sigterm as extern "C" fn(i32) as usize);
        }
    }
}

/// Installs the SIGTERM handler (idempotent). On non-unix targets this
/// is a no-op and shutdown happens via EOF or a `shutdown` request.
pub fn install_sigterm_handler() {
    #[cfg(unix)]
    imp::install();
}

/// Whether SIGTERM has been received.
pub fn sigterm_received() -> bool {
    SIGTERM.load(Ordering::SeqCst)
}

/// Sets or clears the shutdown flag by hand — what a `shutdown`
/// request does, and what tests use in place of a real signal.
pub fn set_shutdown(v: bool) {
    SIGTERM.store(v, Ordering::SeqCst);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flag_roundtrip() {
        install_sigterm_handler();
        assert!(!sigterm_received() || {
            // Another test may have set it; normalize.
            set_shutdown(false);
            !sigterm_received()
        });
        set_shutdown(true);
        assert!(sigterm_received());
        set_shutdown(false);
    }
}
