//! Table-driven malformed-request tests: every hostile frame yields a
//! typed error reply, and the daemon keeps serving afterwards.

use rmd_serve::{EngineConfig, ServeEngine};
use std::time::Instant;

struct Case {
    name: &'static str,
    line: String,
    want_kind: &'static str,
    want_code: u64,
}

fn kind_of(v: &serde_json::Value) -> Option<&str> {
    v.get("error")?.get("kind")?.as_str()
}

fn code_of(v: &serde_json::Value) -> Option<u64> {
    v.get("error")?.get("code")?.as_u64()
}

#[test]
fn hostile_frames_get_typed_replies_and_service_continues() {
    let mut engine = ServeEngine::new(EngineConfig {
        max_frame_bytes: 4096,
        ..EngineConfig::default()
    });

    // A real fingerprint so the mismatch case is the only wrong bit.
    let (reply, _) = engine.handle_line(r#"{"type":"machine","model":"fig1"}"#, Instant::now());
    let v: serde_json::Value = serde_json::from_str(&reply).unwrap();
    assert_eq!(v.get("ok").and_then(|o| o.as_bool()), Some(true), "{reply}");

    let cases = vec![
        Case {
            name: "truncated JSON",
            line: r#"{"type":"status","id":"#.to_string(),
            want_kind: "malformed",
            want_code: 100,
        },
        Case {
            name: "interleaved pipelined frames on one line",
            line: r#"{"type":"status","id":1}{"type":"status","id":2}"#.to_string(),
            want_kind: "malformed",
            want_code: 100,
        },
        Case {
            name: "oversized line",
            line: format!(r#"{{"type":"status","pad":"{}"}}"#, "x".repeat(8192)),
            want_kind: "oversized",
            want_code: 101,
        },
        Case {
            name: "unknown request type",
            line: r#"{"type":"reticulate","id":3}"#.to_string(),
            want_kind: "unknown_type",
            want_code: 102,
        },
        Case {
            name: "non-object top level",
            line: r#"[1,2,3]"#.to_string(),
            want_kind: "malformed",
            want_code: 100,
        },
        Case {
            name: "schedule missing nodes",
            line: r#"{"type":"schedule","fingerprint":"rmd-0000000000000000"}"#.to_string(),
            want_kind: "bad_request",
            want_code: 103,
        },
        Case {
            name: "fingerprint mismatch",
            line: r#"{"type":"schedule","fingerprint":"rmd-0000000000000000","nodes":["A"]}"#
                .to_string(),
            want_kind: "unknown_fingerprint",
            want_code: 104,
        },
        Case {
            name: "edge index out of range",
            line: r#"{"type":"schedule","fingerprint":"rmd-0000000000000000","nodes":["A"],"edges":[[0,7,1,0]]}"#
                .to_string(),
            want_kind: "bad_request",
            want_code: 103,
        },
        Case {
            name: "unknown op name",
            line: r#"{"type":"schedule","fingerprint":"FPHERE","nodes":["no-such-op"]}"#
                .to_string(),
            want_kind: "bad_request",
            want_code: 103,
        },
        Case {
            name: "suite with zero loops",
            line: r#"{"type":"suite","fingerprint":"rmd-0000000000000000","loops":0}"#.to_string(),
            want_kind: "bad_request",
            want_code: 103,
        },
        Case {
            name: "id of unsupported type",
            line: r#"{"type":"status","id":[1]}"#.to_string(),
            want_kind: "bad_request",
            want_code: 103,
        },
        Case {
            name: "negative deadline",
            line: r#"{"type":"status","deadline_ms":-1}"#.to_string(),
            want_kind: "bad_request",
            want_code: 103,
        },
    ];

    let fp = {
        let (reply, _) =
            engine.handle_line(r#"{"type":"machine","model":"fig1"}"#, Instant::now());
        let v: serde_json::Value = serde_json::from_str(&reply).unwrap();
        v.get("fingerprint").and_then(|f| f.as_str()).unwrap().to_string()
    };

    for case in cases {
        let line = case.line.replace("FPHERE", &fp);
        let (reply, shutdown) = engine.handle_line(&line, Instant::now());
        assert!(!shutdown, "{}: must not shut the daemon down", case.name);
        let v: serde_json::Value = serde_json::from_str(&reply)
            .unwrap_or_else(|e| panic!("{}: reply not JSON ({e}): {reply}", case.name));
        assert_eq!(
            v.get("ok").and_then(|o| o.as_bool()),
            Some(false),
            "{}: {reply}",
            case.name
        );
        assert_eq!(kind_of(&v), Some(case.want_kind), "{}: {reply}", case.name);
        assert_eq!(code_of(&v), Some(case.want_code), "{}: {reply}", case.name);

        // The daemon keeps serving after every hostile frame.
        let (status, _) = engine.handle_line(r#"{"type":"status"}"#, Instant::now());
        let s: serde_json::Value = serde_json::from_str(&status).unwrap();
        assert_eq!(
            s.get("ok").and_then(|o| o.as_bool()),
            Some(true),
            "{}: daemon stopped serving: {status}",
            case.name
        );
    }

    // And real work still succeeds at the end of the gauntlet.
    let line = format!(
        r#"{{"type":"schedule","fingerprint":"{fp}","nodes":["A","B"],"edges":[[0,1,2,0]]}}"#
    );
    let (reply, _) = engine.handle_line(&line, Instant::now());
    let v: serde_json::Value = serde_json::from_str(&reply).unwrap();
    assert_eq!(v.get("ok").and_then(|o| o.as_bool()), Some(true), "{reply}");
}
