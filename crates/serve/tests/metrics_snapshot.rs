//! Metrics-snapshot consistency: a `metrics` frame observed mid-burst
//! must be an exact, coherent view of the engine at that instant — not
//! an approximation, not a torn read, not dependent on merge order.
//!
//! Two layers are pinned here. Single-engine: interleaved `metrics`
//! frames report exactly the number of requests handled so far, and
//! taking a snapshot never perturbs the live registry. Multi-worker:
//! when several engines publish snapshots concurrently, merging the
//! published registries in *any* order renders byte-identical JSON, and
//! the merged counters equal the per-worker sums at that instant.

use rmd_obs::export::registry_to_json;
use rmd_obs::MetricRegistry;
use rmd_serve::{EngineConfig, ServeEngine};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::Instant;

fn ok_reply(engine: &mut ServeEngine, line: &str) -> serde_json::Value {
    let (reply, shutdown) = engine.handle_line(line, Instant::now());
    assert!(!shutdown);
    let v: serde_json::Value = serde_json::from_str(&reply).expect("reply is JSON");
    assert_eq!(v.get("ok").and_then(|o| o.as_bool()), Some(true), "{reply}");
    v
}

fn counter(v: &serde_json::Value, name: &str) -> u64 {
    v.get("metrics")
        .and_then(|m| m.get("counters"))
        .and_then(|c| c.get(name))
        .and_then(|x| x.as_u64())
        .unwrap_or_else(|| panic!("metrics reply lacks counter {name}"))
}

#[test]
fn metrics_frame_reports_exact_request_count_mid_burst() {
    let mut engine = ServeEngine::new(EngineConfig::default());
    let mut sent = 0u64;
    for burst in 1..=10u64 {
        for i in 0..9 {
            ok_reply(&mut engine, &format!(r#"{{"type":"status","id":{i}}}"#));
            sent += 1;
        }
        let v = ok_reply(&mut engine, r#"{"type":"metrics"}"#);
        sent += 1;
        // The snapshot counts every request admitted so far, including
        // this metrics frame itself — an exact figure, every time.
        assert_eq!(counter(&v, "serve.requests"), sent, "burst {burst}");
        assert_eq!(counter(&v, "serve.ok"), sent - 1, "burst {burst}");
    }
    // The snapshots themselves never leaked into the live registry:
    // the engine's own counter agrees with the frame count.
    assert_eq!(engine.counter("serve.requests"), sent);
}

#[test]
fn threaded_snapshot_equals_sum_of_worker_registries() {
    const WORKERS: usize = 4;
    const REQUESTS_PER_WORKER: u64 = 200;

    // Each worker drives its own engine and publishes a fresh snapshot
    // after every request; the collector plays the role of a `metrics`
    // frame, merging whatever the workers have published at an instant.
    let slots: Arc<Vec<Mutex<MetricRegistry>>> = Arc::new(
        (0..WORKERS).map(|_| Mutex::new(MetricRegistry::new())).collect(),
    );

    thread::scope(|scope| {
        for w in 0..WORKERS {
            let slots = Arc::clone(&slots);
            scope.spawn(move || {
                let mut engine = ServeEngine::new(EngineConfig::default());
                for i in 0..REQUESTS_PER_WORKER {
                    let (reply, _) =
                        engine.handle_line(&format!(r#"{{"type":"status","id":{i}}}"#), Instant::now());
                    assert!(reply.contains("\"ok\":true"), "{reply}");
                    *slots[w].lock().unwrap() = engine.metrics_snapshot();
                }
            });
        }

        let slots = Arc::clone(&slots);
        scope.spawn(move || {
            for _ in 0..25 {
                // One coherent instant: clone every published snapshot,
                // then reason about the clones only.
                let snaps: Vec<MetricRegistry> =
                    slots.iter().map(|s| s.lock().unwrap().clone()).collect();

                // Merge order must not matter: left-to-right,
                // right-to-left, and pairwise-tree renders identically.
                let mut ltr = MetricRegistry::new();
                for s in &snaps {
                    ltr.merge(s);
                }
                let mut rtl = MetricRegistry::new();
                for s in snaps.iter().rev() {
                    rtl.merge(s);
                }
                let mut pairs: Vec<MetricRegistry> = snaps.clone();
                while pairs.len() > 1 {
                    let b = pairs.pop().unwrap();
                    pairs.last_mut().unwrap().merge(&b);
                }
                let tree = pairs.pop().unwrap();
                let rendered = registry_to_json(&ltr);
                assert_eq!(rendered, registry_to_json(&rtl));
                assert_eq!(rendered, registry_to_json(&tree));

                // The merge IS the sum of the per-worker registries at
                // this instant — counters and histogram counts alike.
                let sum_requests: u64 = snaps.iter().map(|s| s.counter("serve.requests")).sum();
                assert_eq!(ltr.counter("serve.requests"), sum_requests);
                let sum_lat: u64 = snaps
                    .iter()
                    .filter_map(|s| s.histogram("serve.latency_ns"))
                    .map(|h| h.count())
                    .sum();
                let merged_lat =
                    ltr.histogram("serve.latency_ns").map(|h| h.count()).unwrap_or(0);
                assert_eq!(merged_lat, sum_lat);
                thread::yield_now();
            }
        });
    });

    // After the burst, the merged view accounts for every request sent.
    let mut total = MetricRegistry::new();
    for s in slots.iter() {
        total.merge(&s.lock().unwrap());
    }
    assert_eq!(
        total.counter("serve.requests"),
        WORKERS as u64 * REQUESTS_PER_WORKER
    );
    assert_eq!(
        total.histogram("serve.latency_ns").map(|h| h.count()),
        Some(WORKERS as u64 * REQUESTS_PER_WORKER)
    );
}
