//! The acceptance soak: 10k requests under seeded chaos — mixed valid,
//! malformed, panicking, and deadline-busting frames — with zero
//! daemon crashes, every request answered (success or typed error),
//! every successful schedule byte-identical to the offline library
//! result, and a clean SIGTERM drain mid-burst. Live telemetry rides
//! along: periodic metrics snapshots stay monotonic and parseable,
//! traced requests carry their span tree without perturbing untraced
//! replies, and every injected panic trips a parseable flight-recorder
//! dump.

use rmd_core::{reduce_with_fallback, Objective, ReduceOptions};
use rmd_machine::models;
use rmd_query::WordLayout;
use rmd_sched::{
    mii::mii, DepGraph, DepKind, ImsConfig, IterativeModuloScheduler, Representation,
};
use rmd_serve::daemon::{serve_stream, SharedWriter};
use rmd_serve::engine::offline_suite_digest;
use rmd_serve::{signal, Chaos, EngineConfig, ServeEngine, ServeOptions};
use std::collections::HashMap;
use std::io::{BufReader, Cursor, Read, Write};
use std::sync::{Arc, Mutex};
use std::time::Instant;

const SOAK_REQUESTS: usize = 10_000;
const CHAOS_SEED: u64 = 0xC5;
const SUITE_LOOPS: usize = 2;
const SUITE_SEED: u64 = 7;
const SUITE_THREADS: usize = 2;

/// A `(from, to, delay, distance)` dependence edge.
type Edge = (usize, usize, i32, u32);

/// The three schedule-request shapes the soak cycles through:
/// node names plus their dependence edges.
const VARIANTS: [(&[&str], &[Edge]); 3] = [
    (&["A", "B"], &[(0, 1, 2, 0)]),
    (&["A", "B", "B"], &[(0, 1, 2, 0), (1, 2, 1, 0)]),
    (&["B", "B"], &[(0, 1, 2, 0), (1, 0, 1, 1)]),
];

fn schedule_line(i: usize, fp: &str) -> String {
    let (nodes, edges) = VARIANTS[i % VARIANTS.len()];
    let nodes_json = nodes
        .iter()
        .map(|n| format!("\"{n}\""))
        .collect::<Vec<_>>()
        .join(",");
    let edges_json = edges
        .iter()
        .map(|(f, t, d, dist)| format!("[{f},{t},{d},{dist}]"))
        .collect::<Vec<_>>()
        .join(",");
    let deadline = if i % 7 == 0 { r#","deadline_ms":1"# } else { "" };
    let trace = if i % 11 == 0 { r#","trace":true"# } else { "" };
    format!(
        r#"{{"type":"schedule","id":{i},"fingerprint":"{fp}","nodes":[{nodes_json}],"edges":[{edges_json}]{deadline}{trace}}}"#
    )
}

fn build_line(i: usize, fig1_fp: &str, cydra_fp: &str) -> String {
    if i % 113 == 0 {
        // Oversized: blows the 4096-byte frame limit.
        format!(r#"{{"type":"status","id":{i},"pad":"{}"}}"#, "x".repeat(16384))
    } else if i % 101 == 0 {
        format!(
            r#"{{"type":"suite","id":{i},"fingerprint":"{cydra_fp}","loops":{SUITE_LOOPS},"seed":{SUITE_SEED},"threads":{SUITE_THREADS}}}"#
        )
    } else if i % 73 == 0 {
        // Live telemetry mid-burst: a metrics frame between requests.
        format!(r#"{{"type":"metrics","id":{i}}}"#)
    } else if i % 50 == 0 {
        format!(r#"{{"type":"status","id":{i}}}"#)
    } else if i % 37 == 0 {
        // Malformed on purpose (on top of what chaos corrupts).
        r#"{"type":"#.to_string()
    } else {
        schedule_line(i, fig1_fp)
    }
}

/// Submits a machine until the reply is ok — chaos may corrupt or
/// panic any individual attempt; a real client retries exactly so.
fn submit_until_ok(engine: &mut ServeEngine, line: &str) -> String {
    for _ in 0..64 {
        let (reply, _) = engine.handle_line(line, Instant::now());
        let v: serde_json::Value = serde_json::from_str(&reply).expect("reply is JSON");
        if v.get("ok").and_then(|o| o.as_bool()) == Some(true) {
            return v
                .get("fingerprint")
                .and_then(|f| f.as_str())
                .expect("machine reply carries fingerprint")
                .to_string();
        }
    }
    panic!("machine submission never succeeded under chaos");
}

/// The offline reference: the same rule the daemon documents, computed
/// with no daemon, no cache, and no chaos.
fn offline_schedule(
    m: &rmd_machine::MachineDescription,
    red: &rmd_machine::MachineDescription,
    variant: usize,
) -> (u64, Vec<u64>) {
    let (nodes, edges) = VARIANTS[variant];
    let mut g = DepGraph::new();
    let ids: Vec<_> = nodes
        .iter()
        .map(|n| g.add_node(m.op_by_name(n).expect("op exists")))
        .collect();
    for &(f, t, d, dist) in edges {
        g.add_edge(ids[f], ids[t], d, dist, DepKind::Flow);
    }
    let lower = mii(&g, m);
    let layout = WordLayout::widest(64, red.num_resources());
    let r = IterativeModuloScheduler::new(ImsConfig::default())
        .schedule_with_mii(&g, red, Representation::Bitvec(layout), lower)
        .expect("offline schedule succeeds");
    (
        u64::from(r.ii),
        r.times.iter().map(|&t| u64::from(t)).collect(),
    )
}

fn reduced(m: &rmd_machine::MachineDescription) -> rmd_machine::MachineDescription {
    let layout = WordLayout::widest(64, m.num_resources());
    reduce_with_fallback(m, Objective::KCycleWord { k: layout.k }, &ReduceOptions::default())
        .machine
}

#[test]
fn chaos_soak_ten_thousand_requests() {
    let mut engine = ServeEngine::new(EngineConfig {
        chaos: Some(Chaos::new(CHAOS_SEED)),
        max_frame_bytes: 4096,
        ..EngineConfig::default()
    });
    let fig1_line = r#"{"type":"machine","model":"fig1"}"#;
    let cydra_line = r#"{"type":"machine","model":"cydra5-subset"}"#;
    let fig1_fp = submit_until_ok(&mut engine, fig1_line);
    let cydra_fp = submit_until_ok(&mut engine, cydra_line);

    // Offline references, computed once (the daemon must match them on
    // every successful reply no matter what chaos did in between).
    let fig1 = models::example_machine();
    let fig1_red = reduced(&fig1);
    let expected: Vec<(u64, Vec<u64>)> = (0..VARIANTS.len())
        .map(|v| offline_schedule(&fig1, &fig1_red, v))
        .collect();
    let cydra = models::cydra5_subset();
    let cydra_red = reduced(&cydra);
    let expected_digest = {
        let ops = rmd_loops::OpSet::for_cydra_subset(&cydra);
        let suite = rmd_loops::suite(&ops, SUITE_LOOPS, SUITE_SEED);
        let layout = WordLayout::widest(64, cydra_red.num_resources());
        let runs = rmd_bench::run_suite_runs_parallel(
            &cydra_red,
            &cydra,
            &suite,
            Representation::Bitvec(layout),
            ImsConfig::default().budget_ratio,
            SUITE_THREADS,
        );
        offline_suite_digest(&runs)
    };

    let mut kinds: HashMap<String, u64> = HashMap::new();
    let mut ok_schedules = 0u64;
    let mut ok_suites = 0u64;
    let mut ok_metrics = 0u64;
    let mut traced_schedules = 0u64;
    let mut answered = 0u64;
    let mut last_requests = 0u64;
    for i in 1..=SOAK_REQUESTS {
        let line = build_line(i, &fig1_fp, &cydra_fp);
        let (reply, shutdown) = engine.handle_line(&line, Instant::now());
        assert!(!shutdown, "nothing in the soak requests shutdown");
        assert!(!reply.contains('\n'), "request {i}: reply broke line framing");
        let v: serde_json::Value = serde_json::from_str(&reply)
            .unwrap_or_else(|e| panic!("request {i}: reply not JSON ({e}): {reply}"));
        answered += 1;
        if i % 500 == 0 {
            // --metrics-every at work: a periodic snapshot taken mid-burst
            // must render as valid JSON with a monotonic request counter,
            // and taking it must not perturb the live registry.
            let snap = rmd_obs::export::registry_to_json(&engine.metrics_snapshot());
            let sv: serde_json::Value =
                serde_json::from_str(&snap).unwrap_or_else(|e| panic!("snapshot not JSON ({e})"));
            let reqs = sv
                .get("counters")
                .and_then(|c| c.get("serve.requests"))
                .and_then(|r| r.as_u64())
                .expect("snapshot carries serve.requests");
            assert!(reqs >= last_requests, "request counter went backwards");
            last_requests = reqs;
        }
        match v.get("ok").and_then(|o| o.as_bool()) {
            Some(true) => match v.get("type").and_then(|t| t.as_str()) {
                Some("schedule") => {
                    let id = v.get("id").and_then(|x| x.as_u64()).expect("id echoed") as usize;
                    let (want_ii, want_times) = &expected[id % VARIANTS.len()];
                    let got_ii = v.get("ii").and_then(|x| x.as_u64()).unwrap();
                    let got_times: Vec<u64> = v
                        .get("times")
                        .and_then(|t| t.as_array())
                        .unwrap()
                        .iter()
                        .map(|t| t.as_u64().unwrap())
                        .collect();
                    assert_eq!(got_ii, *want_ii, "request {i}: II diverged from offline");
                    assert_eq!(
                        &got_times, want_times,
                        "request {i}: schedule bytes diverged from offline"
                    );
                    // Tracing changes the reply's *decoration*, never its
                    // *result*: traced replies carry a span tree, untraced
                    // replies carry no trace member at all.
                    if id % 11 == 0 {
                        let events = v
                            .get("trace")
                            .and_then(|t| t.get("traceEvents"))
                            .and_then(|e| e.as_array())
                            .unwrap_or_else(|| panic!("request {i}: traced reply lacks span tree"));
                        assert!(!events.is_empty(), "request {i}: empty span tree");
                        traced_schedules += 1;
                    } else {
                        assert!(v.get("trace").is_none(), "request {i}: stray trace member");
                    }
                    ok_schedules += 1;
                }
                Some("metrics") => {
                    let reqs = v
                        .get("metrics")
                        .and_then(|m| m.get("counters"))
                        .and_then(|c| c.get("serve.requests"))
                        .and_then(|r| r.as_u64())
                        .unwrap_or_else(|| {
                            panic!("request {i}: metrics reply lacks serve.requests")
                        });
                    assert!(reqs >= last_requests, "request counter went backwards");
                    last_requests = reqs;
                    ok_metrics += 1;
                }
                Some("suite") => {
                    assert_eq!(
                        v.get("schedule_digest").and_then(|d| d.as_str()),
                        Some(expected_digest.as_str()),
                        "request {i}: suite digest diverged from offline"
                    );
                    assert_eq!(v.get("loops").and_then(|l| l.as_u64()), Some(SUITE_LOOPS as u64));
                    ok_suites += 1;
                }
                _ => {}
            },
            Some(false) => {
                let kind = v
                    .get("error")
                    .and_then(|e| e.get("kind"))
                    .and_then(|k| k.as_str())
                    .unwrap_or_else(|| panic!("request {i}: error reply lacks kind: {reply}"))
                    .to_string();
                *kinds.entry(kind.clone()).or_insert(0) += 1;
                if kind == "panicked" {
                    // A panic quarantines the touched machine; a real
                    // client resubmits and carries on. Fingerprints
                    // must come back identical.
                    assert_eq!(submit_until_ok(&mut engine, fig1_line), fig1_fp);
                    assert_eq!(submit_until_ok(&mut engine, cydra_line), cydra_fp);
                }
            }
            None => panic!("request {i}: reply lacks ok field: {reply}"),
        }
    }

    assert_eq!(answered, SOAK_REQUESTS as u64, "every request answered");
    assert!(ok_schedules >= 1_000, "only {ok_schedules} schedules verified");
    assert!(ok_suites >= 1, "no suite request succeeded");
    assert!(ok_metrics >= 1, "no metrics frame succeeded mid-burst");
    assert!(traced_schedules >= 1, "no traced schedule survived chaos");
    assert!(kinds.get("malformed").copied().unwrap_or(0) >= 1, "{kinds:?}");
    assert!(kinds.get("oversized").copied().unwrap_or(0) >= 1, "{kinds:?}");
    assert!(kinds.get("panicked").copied().unwrap_or(0) >= 1, "{kinds:?}");
    assert!(kinds.get("timeout").copied().unwrap_or(0) >= 1, "{kinds:?}");
    assert!(engine.counter("serve.quarantined") >= 1);
    // No reply kind outside the typed taxonomy leaked out.
    for kind in kinds.keys() {
        assert!(
            [
                "malformed",
                "oversized",
                "unknown_type",
                "bad_request",
                "unknown_fingerprint",
                "parse",
                "invalid_machine",
                "limit_exceeded",
                "degenerate_input",
                "verification_failed",
                "io",
                "budget_exhausted",
                "unschedulable",
                "timeout",
                "overloaded",
                "shutting_down",
                "panicked",
                "rmd_error",
            ]
            .contains(&kind.as_str()),
            "untyped error kind {kind}"
        );
    }
    // Every injected panic tripped the flight recorder, and every dump
    // is a parseable post-mortem whose newest entry is the offender.
    // (The machine resubmission retries above can panic too, so the
    // dump count is a floor, not an exact match.)
    let dumps = engine.take_flight_dumps();
    let panicked = kinds.get("panicked").copied().unwrap_or(0);
    assert!(
        dumps.len() as u64 >= panicked,
        "{panicked} panics but only {} flight dumps",
        dumps.len()
    );
    for dump in &dumps {
        let d: serde_json::Value =
            serde_json::from_str(dump).unwrap_or_else(|e| panic!("dump not JSON ({e}): {dump}"));
        assert_eq!(
            d.get("flight_recorder").and_then(|s| s.as_str()),
            Some("rmd-flight/1"),
            "dump lacks schema tag"
        );
        let reason = d.get("reason").and_then(|s| s.as_str()).expect("dump carries reason");
        assert!(reason.starts_with("panic"), "unexpected dump reason {reason:?}");
        let entries = d
            .get("entries")
            .and_then(|e| e.as_array())
            .expect("dump carries entries");
        assert!(!entries.is_empty(), "empty flight dump");
        assert_eq!(
            entries.last().unwrap().get("outcome").and_then(|o| o.as_str()),
            Some("panicked"),
            "newest flight entry is not the panicking request"
        );
    }

    // Metrics survive the whole ordeal and still flush as valid JSON.
    let metrics = engine.flush_metrics();
    assert!(serde_json::from_str(&metrics).is_ok(), "{metrics}");
}

/// A reader that raises the process SIGTERM flag once roughly half of
/// the input has been consumed — a signal arriving mid-burst.
struct SigtermMidway<R> {
    inner: R,
    consumed: usize,
    at: usize,
}

impl<R: Read> Read for SigtermMidway<R> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let n = self.inner.read(buf)?;
        self.consumed += n;
        if self.consumed >= self.at {
            signal::set_shutdown(true);
        }
        Ok(n)
    }
}

#[derive(Clone, Default)]
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

#[test]
fn sigterm_mid_burst_drains_cleanly() {
    signal::set_shutdown(false);
    let lines: Vec<String> = (0..1_000)
        .map(|i| format!(r#"{{"type":"status","id":{i}}}"#))
        .collect();
    let input = lines.join("\n") + "\n";
    let total_bytes = input.len();
    let mut engine = ServeEngine::new(EngineConfig::default());
    let buf = SharedBuf::default();
    let writer: SharedWriter = Arc::new(Mutex::new(Box::new(buf.clone())));
    let opts = ServeOptions {
        queue_cap: 16,
        ..ServeOptions::default()
    };
    serve_stream(
        BufReader::new(SigtermMidway {
            inner: Cursor::new(input.into_bytes()),
            consumed: 0,
            at: total_bytes / 2,
        }),
        writer,
        &mut engine,
        &opts,
    );
    signal::set_shutdown(false);

    let out = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
    let mut ok = 0u64;
    let mut overloaded = 0u64;
    let mut shutting_down = 0u64;
    let mut replies = 0u64;
    for line in out.lines() {
        let v: serde_json::Value =
            serde_json::from_str(line).unwrap_or_else(|e| panic!("not JSON ({e}): {line}"));
        replies += 1;
        match v.get("ok").and_then(|o| o.as_bool()) {
            Some(true) => ok += 1,
            Some(false) => {
                match v
                    .get("error")
                    .and_then(|e| e.get("kind"))
                    .and_then(|k| k.as_str())
                {
                    Some("overloaded") => overloaded += 1,
                    Some("shutting_down") => shutting_down += 1,
                    other => panic!("unexpected drain-phase error kind {other:?}: {line}"),
                }
            }
            None => panic!("reply lacks ok: {line}"),
        }
    }
    assert_eq!(
        replies,
        lines.len() as u64,
        "every frame answered exactly once: ok={ok} overloaded={overloaded} shutting_down={shutting_down}"
    );
    assert!(ok >= 1, "nothing was processed before the signal");
    assert!(
        shutting_down >= 1,
        "frames read after SIGTERM must be rejected as shutting_down"
    );
    assert_eq!(engine.counter("serve.shed"), overloaded);
    // The drain flushed usable metrics.
    let metrics = engine.flush_metrics();
    assert!(serde_json::from_str(&metrics).is_ok(), "{metrics}");
}
