//! Alternative operations in the modulo scheduler: generic loads spread
//! across the Cydra 5's two memory ports automatically via
//! `check_with_alt` (paper §7; 21% of the paper's benchmark operations
//! had exactly one alternative).
//!
//! ```text
//! cargo run -p rmd-examples --bin alternative_scheduling
//! ```

use rmd_examples::section;
use rmd_machine::models::{cydra5_alt_groups, cydra5_subset};
use rmd_sched::{mii, DepGraph, DepKind, ImsConfig, IterativeModuloScheduler, Representation};

fn main() {
    let m = cydra5_subset();
    let groups = cydra5_alt_groups(&m);

    section("1. A load-heavy loop written against port 0 only");
    // Six independent load→fadd→store strands, all naming port 0: the
    // front end didn't balance ports; the scheduler should.
    let load0 = m.op_by_name("load.w.0").unwrap();
    let store0 = m.op_by_name("store.w.0").unwrap();
    let fadd = m.op_by_name("fadd").unwrap();
    let mut g = DepGraph::new();
    for _ in 0..6 {
        let l = g.add_node(load0);
        let a = g.add_node(fadd);
        let s = g.add_node(store0);
        g.add_edge(l, a, 21, 0, DepKind::Flow);
        g.add_edge(a, s, 7, 0, DepKind::Flow);
    }
    println!("{} ops: 6x load.w.0, 6x fadd, 6x store.w.0", g.num_nodes());

    let ims = IterativeModuloScheduler::new(ImsConfig::default());

    section("2. Without alternatives: port 0 is the bottleneck");
    let fixed = ims.schedule(&g, &m, Representation::Discrete).unwrap();
    println!(
        "II = {} (MII {} — mem0_in takes 12 reservations per iteration)",
        fixed.ii, fixed.mii
    );

    section("3. With check_with_alt: loads and stores spread over both ports");
    // MII under alternatives: balanced port pressure halves the bound;
    // start the search there and let the scheduler escalate if needed.
    let balanced_mii = mii::mii(&g, &m).div_ceil(2);
    let alt = ims
        .schedule_with_alternatives(&g, &m, &groups, Representation::Discrete, balanced_mii)
        .unwrap();
    println!("II = {}", alt.ii);
    let mut port_counts = [0usize; 2];
    for v in g.nodes() {
        let name = m.operation(alt.chosen[v.index()]).name();
        if name.starts_with("load") || name.starts_with("store") {
            if name.ends_with(".0") {
                port_counts[0] += 1;
            } else {
                port_counts[1] += 1;
            }
        }
    }
    println!(
        "memory ops per port: {} on port 0, {} on port 1",
        port_counts[0], port_counts[1]
    );
    rmd_sched::validate(&g, &m, &alt).expect("valid against the machine");
    assert!(alt.ii < fixed.ii, "alternatives must relieve the bottleneck");
    println!(
        "\nthe alternative-aware schedule is {:.1}x denser ({} -> {} cycles/iteration)",
        f64::from(fixed.ii) / f64::from(alt.ii),
        fixed.ii,
        alt.ii
    );
}
