//! Compare hazard detection via finite-state automata (Proebsting-Fraser
//! / Bala-Rubin) with reduced reservation tables, on the MIPS R3000 and
//! the Alpha 21064.
//!
//! ```text
//! cargo run -p rmd-examples --bin automata_comparison
//! ```

use rmd_automata::{cost, partition_resources, Automaton, Cursor, Direction, FactoredAutomata};
use rmd_core::{reduce, Objective};
use rmd_examples::section;
use rmd_machine::models::{alpha21064, mips_r3000};
use rmd_query::{ContentionQuery, DiscreteModule, OpInstance};

fn main() {
    section("1. MIPS R3000/R3010: a monolithic automaton is buildable");
    let mips = mips_r3000();
    let fsa = Automaton::build(&mips, Direction::Forward, 2_000_000).expect("fits");
    println!(
        "{} states, transition tables {} KiB",
        fsa.num_states(),
        fsa.table_bytes() / 1024
    );
    let red = reduce(&mips, Objective::ResUses);
    println!(
        "reduced reservation tables: {} resources, {} total usages \
         (tables fit in a few hundred bytes)",
        red.reduced.num_resources(),
        red.reduced.total_usages()
    );

    section("2. Both agree on every in-order decision");
    let mut cur = Cursor::new(&fsa);
    let mut tables = DiscreteModule::new(&mips);
    let script: Vec<_> = (0..200u32)
        .map(|i| rmd_machine::OpId((i * 13 + i / 7) % mips.num_operations() as u32))
        .collect();
    let mut inst = 0u32;
    let mut agreements = 0;
    for (i, &op) in script.iter().enumerate() {
        let t = i as u32; // one candidate issue per cycle, in order
        cur.advance_to(t);
        let a = cur.can_issue(op);
        let b = tables.check(op, t);
        assert_eq!(a, b, "automaton and tables disagree at {t}");
        agreements += 1;
        if a {
            cur.try_issue(op);
            tables.assign(OpInstance(inst), op, t);
            inst += 1;
        }
    }
    println!("{agreements} decisions, 0 disagreements");

    section("3. Alpha 21064: the automaton must be factored");
    let alpha = alpha21064();
    match Automaton::build(&alpha, Direction::Forward, 200_000) {
        Ok(a) => println!("monolithic: {} states", a.num_states()),
        Err(e) => println!("monolithic: {e}"),
    }
    let p = partition_resources(&alpha, 2);
    let fwd = FactoredAutomata::build(&alpha, Direction::Forward, &p, 2_000_000).unwrap();
    let rev = FactoredAutomata::build(&alpha, Direction::Reverse, &p, 2_000_000).unwrap();
    println!(
        "factored: forward {:?}, reverse {:?} states",
        fwd.state_counts(),
        rev.state_counts()
    );

    section("3b. Unrestricted scheduling via a forward/reverse pair");
    let mips_rev = Automaton::build(&mips, Direction::Reverse, 2_000_000).expect("fits");
    let mut pairsched =
        rmd_automata::unrestricted::PairScheduler::new(&mips, &fsa, &mips_rev, 128);
    let mut tables = DiscreteModule::new(&mips); // fresh empty schedule
    tables.reset();
    let mut placed = 0u32;
    for i in 0..200u32 {
        let op = rmd_machine::OpId((i * 7) % mips.num_operations() as u32);
        let t = (i * 37) % 100; // arbitrary order, mid-schedule insertions
        let a = pairsched.check(op, t);
        assert_eq!(a, tables.check(op, t), "pair and tables must agree");
        if a {
            pairsched.insert(op, t);
            tables.assign(OpInstance(1000 + placed), op, t);
            placed += 1;
        }
    }
    let st = pairsched.stats();
    println!(
        "{placed} insertions: automata pair did {} lookups and {} cached-state \
         writes, holding {} bytes of per-cycle state;",
        st.lookups,
        st.state_writes,
        pairsched.cached_state_bytes()
    );
    println!(
        "the reservation tables did {} work units with no cached state at all.",
        tables.counters().total_units()
    );

    section("4. Memory per schedule cycle for unrestricted scheduling");
    let red = reduce(&alpha, Objective::KCycleWord { k: 7 });
    println!(
        "automata (cached fwd+rev states): {} bits/cycle",
        cost::factored_cache_bits_per_cycle(&fwd, &rev)
    );
    println!(
        "reduced bitvector reserved table:  {} bits/cycle",
        cost::bitvector_bits_per_cycle(red.reduced.num_resources())
    );
    println!("(paper §6: ~64 bits vs 7 bits per cycle for this machine)");
}
