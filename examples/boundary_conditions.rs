//! Basic-block boundary conditions: dangling resource requirements from
//! predecessor blocks constrain where operations may be placed — the
//! paper's §1 motivation for precise reserved-table state.
//!
//! ```text
//! cargo run -p rmd-examples --bin boundary_conditions
//! ```

use rmd_core::{reduce, Objective};
use rmd_examples::section;
use rmd_machine::models::mips_r3000;
use rmd_sched::{BoundaryOp, DepGraph, DepKind, ListScheduler, Representation};

fn main() {
    let machine = mips_r3000();
    let get = |n: &str| machine.op_by_name(n).unwrap();

    // The block: a float pipeline burst that needs the FPA.
    let mut g = DepGraph::new();
    let l0 = g.add_node(get("load"));
    let m0 = g.add_node(get("mul.s"));
    let d0 = g.add_node(get("div.s"));
    let a0 = g.add_node(get("add.s"));
    let s0 = g.add_node(get("store"));
    g.add_edge(l0, m0, 2, 0, DepKind::Flow);
    g.add_edge(m0, d0, 4, 0, DepKind::Flow);
    g.add_edge(d0, a0, 12, 0, DepKind::Flow);
    g.add_edge(a0, s0, 2, 0, DepKind::Flow);

    section("1. No dangling predecessors: the block starts immediately");
    let free = ListScheduler::new().schedule(&g, &machine, Representation::Discrete);
    print_schedule(&machine, &g, &free.times);
    rmd_sched::validate_list(&g, &machine, &free).unwrap();

    section("2. A div.s issued 2 cycles before entry still owns the divider");
    let sched = ListScheduler::with_boundary(vec![BoundaryOp {
        op: get("div.s"),
        issue_cycle: -2,
    }]);
    let tight = sched.schedule(&g, &machine, Representation::Discrete);
    print_schedule(&machine, &g, &tight.times);
    rmd_sched::validate_list(&g, &machine, &tight).unwrap();
    println!(
        "\nthe block's own div.s moved {} -> {} (divider busy through cycle {})",
        free.times[d0.index()],
        tight.times[d0.index()],
        -2 + 10
    );

    section("3. Boundary handling works identically on the reduced machine");
    let red = reduce(&machine, Objective::ResUses);
    let sched = ListScheduler::with_boundary(vec![BoundaryOp {
        op: get("div.s"),
        issue_cycle: -2,
    }]);
    let reduced = sched.schedule(&g, &red.reduced, Representation::Discrete);
    assert_eq!(reduced.times, tight.times, "identical schedule");
    println!(
        "identical placement; query work {} vs {} units",
        tight.counters.total_units(),
        reduced.counters.total_units()
    );
}

fn print_schedule(
    machine: &rmd_machine::MachineDescription,
    g: &DepGraph,
    times: &[i32],
) {
    for n in g.nodes() {
        println!(
            "  {:8} @ {:3}",
            machine.operation(g.op(n)).name(),
            times[n.index()]
        );
    }
}
