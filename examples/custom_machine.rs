//! Load a textual MDL machine description with alternatives, expand and
//! reduce it, and use `check_with_alt` to steer placements to free
//! resources.
//!
//! ```text
//! cargo run -p rmd-examples --bin custom_machine
//! ```

use rmd_core::{reduce, verify_equivalence, Objective};
use rmd_examples::section;
use rmd_query::{check_with_alt, ContentionQuery, DiscreteModule, OpInstance};

const MDL: &str = r#"
// A dual-ported vector unit: loads may use either port; the MAC unit is
// partially pipelined.
machine "dual-port-vector" {
    resources {
        port[2];        // two memory ports
        agen;           // address generator
        mac_stage[3];   // multiply-accumulate pipeline
        acc_bus;        // accumulator write bus
    }

    op load alt {
        { use port0 @ 1; }
        { use port1 @ 1; }
    }

    op mac weight 2.0 {
        use mac_stage0 @ 0;
        use mac_stage1 @ 1, 2;     // recirculates one stage
        use mac_stage2 @ 3;
        use acc_bus @ 4;
    }

    op accstore {
        use acc_bus @ 0;
        use agen @ 0;
        use port0 @ 1;
    }

    op index {
        use agen @ 0;
    }
}
"#;

fn main() {
    section("1. Parse MDL and expand alternatives");
    let (machine, groups) = rmd_machine::mdl::parse_machine(MDL).expect("valid MDL");
    println!("{machine}");
    for (base, members) in groups.iter() {
        if members.len() > 1 {
            println!(
                "  `{base}` expanded into {} alternative operations",
                members.len()
            );
        }
    }

    section("2. Reduce for the discrete representation");
    let red = reduce(&machine, Objective::ResUses);
    verify_equivalence(&machine, &red.reduced).expect("equivalent");
    println!(
        "resources {} -> {}, usages {} -> {}",
        machine.num_resources(),
        red.reduced.num_resources(),
        machine.total_usages(),
        red.reduced.total_usages()
    );
    println!("\nreduced MDL:\n{}", rmd_machine::mdl::print(&red.reduced));

    section("3. check_with_alt picks whichever port is free");
    let mut q = DiscreteModule::new(&red.reduced);
    let load0 = red.reduced.op_by_name("load#0").unwrap();
    for i in 0..3 {
        match check_with_alt(&mut q, &groups, load0, 0) {
            Some(op) => {
                q.assign(OpInstance(i), op, 0);
                println!(
                    "load {i} placed in cycle 0 as `{}`",
                    red.reduced.operation(op).name()
                );
            }
            None => println!("load {i}: no alternative fits in cycle 0 (both ports busy)"),
        }
    }
}
