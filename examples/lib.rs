//! Support library for the runnable examples.
//!
//! Each example is a standalone binary:
//!
//! ```text
//! cargo run -p rmd-examples --bin quickstart
//! cargo run -p rmd-examples --bin custom_machine
//! cargo run -p rmd-examples --bin modulo_scheduling
//! cargo run -p rmd-examples --bin automata_comparison
//! cargo run -p rmd-examples --bin boundary_conditions
//! ```

/// Prints a section header used by all examples.
pub fn section(title: &str) {
    println!("\n=== {title} ===");
}
