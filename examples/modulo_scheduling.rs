//! Software-pipeline a Livermore-style loop on the Cydra 5 with the
//! Iterative Modulo Scheduler, once against the original description and
//! once against the reduced one — same schedule, less work.
//!
//! ```text
//! cargo run -p rmd-examples --bin modulo_scheduling
//! ```

use rmd_core::{reduce, Objective};
use rmd_examples::section;
use rmd_loops::{kernels, OpSet};
use rmd_machine::models::cydra5_subset;
use rmd_query::WordLayout;
use rmd_sched::{mii, ImsConfig, IterativeModuloScheduler, Representation};

fn main() {
    let machine = cydra5_subset();
    let ops = OpSet::for_cydra_subset(&machine);

    section("1. The loop: tri-diagonal elimination (LFK 5), unrolled x2");
    let g = kernels::tridiag(&ops, 2);
    println!(
        "{} operations, {} dependence edges, recurrence: {}",
        g.num_nodes(),
        g.num_edges(),
        g.has_recurrence()
    );
    println!(
        "ResMII = {}, RecMII = {}, MII = {}",
        mii::res_mii(&g, &machine),
        mii::rec_mii(&g),
        mii::mii(&g, &machine)
    );

    section("2. Schedule against the ORIGINAL description");
    let ims = IterativeModuloScheduler::new(ImsConfig::default());
    let m0 = mii::mii(&g, &machine);
    let orig = ims
        .schedule(&g, &machine, Representation::Discrete)
        .expect("schedulable");
    println!(
        "II = {} (MII {}), decisions = {}, query work = {}",
        orig.ii, orig.mii, orig.decisions, orig.counters
    );

    section("3. Schedule against the REDUCED description (bitvector)");
    let red = reduce(&machine, Objective::KCycleWord { k: 4 });
    let k = (64 / red.reduced.num_resources() as u32).clamp(1, 4);
    let fast = ims
        .schedule_with_mii(
            &g,
            &red.reduced,
            Representation::Bitvec(WordLayout::with_k(64, k)),
            m0,
        )
        .expect("schedulable");
    println!(
        "II = {} (MII {}), decisions = {}, query work = {}",
        fast.ii, fast.mii, fast.decisions, fast.counters
    );

    section("4. The schedules are identical; validation runs on the original");
    assert_eq!(orig.times, fast.times, "same schedule from both descriptions");
    rmd_sched::validate(&g, &machine, &fast).expect("valid against the original description");
    println!("kernel (issue slot per op, modulo II = {}):", fast.ii);
    for n in g.nodes() {
        println!(
            "  {:10} t = {:3}  slot {:2}",
            machine.operation(g.op(n)).name(),
            fast.times[n.index()],
            fast.times[n.index()] % fast.ii
        );
    }
    let speedup =
        orig.counters.weighted_avg_units() / fast.counters.weighted_avg_units();
    println!(
        "\nquery work units per call: {:.2} (original) vs {:.2} (reduced) — {speedup:.1}x",
        orig.counters.weighted_avg_units(),
        fast.counters.weighted_avg_units()
    );
}
