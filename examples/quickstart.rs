//! Quickstart: describe a machine, reduce it, and answer contention
//! queries against the reduced description.
//!
//! ```text
//! cargo run -p rmd-examples --bin quickstart
//! ```

use rmd_core::{reduce, verify_equivalence, Objective};
use rmd_examples::section;
use rmd_machine::MachineBuilder;
use rmd_query::{ContentionQuery, DiscreteModule, OpInstance};

fn main() {
    section("1. Describe a machine, close to the hardware");
    // A toy two-unit machine: a pipelined ALU and a non-pipelined
    // divider, sharing one result bus.
    let mut b = MachineBuilder::new("quickstart");
    let issue = b.resource("issue");
    let alu = b.resource("alu");
    let div = b.resource("divider");
    let bus = b.resource("result-bus");
    b.operation("add").usage(issue, 0).usage(alu, 0).usage(bus, 1).finish();
    b.operation("div")
        .usage(issue, 0)
        .span(div, 0, 8)
        .usage(bus, 8)
        .finish();
    let machine = b.build().expect("valid description");
    println!("{machine}");

    section("2. Reduce it (exactly preserving scheduling constraints)");
    let red = reduce(&machine, Objective::ResUses);
    println!("{}", red.reduced);
    println!(
        "resources {} -> {}, usages {} -> {}",
        machine.num_resources(),
        red.reduced.num_resources(),
        machine.total_usages(),
        red.reduced.total_usages()
    );
    verify_equivalence(&machine, &red.reduced).expect("forbidden latencies identical");
    println!("equivalence verified: identical forbidden-latency matrices");

    section("3. Answer contention queries with the reduced tables");
    let add = red.reduced.op_by_name("add").unwrap();
    let dv = red.reduced.op_by_name("div").unwrap();
    let mut q = DiscreteModule::new(&red.reduced);
    q.assign(OpInstance(0), dv, 0);
    println!("div scheduled at cycle 0");
    for cycle in [0, 3, 7, 8, 9] {
        for (name, op) in [("add", add), ("div", dv)] {
            println!(
                "  check({name:3} @ {cycle}): {}",
                if q.check(op, cycle) { "free" } else { "conflict" }
            );
        }
    }
    println!(
        "\nwork performed: {} (one unit per reserved-table entry touched)",
        q.counters()
    );
}
