//! In-tree stand-in for the subset of the `criterion` benchmarking API
//! used by the workspace's benches, so offline builds never touch a
//! registry.
//!
//! Measurement is intentionally simple: each benchmark body runs for a
//! calibrated iteration count and reports the mean wall-clock time per
//! iteration. There is no statistical analysis, HTML report, or
//! comparison against saved baselines — the point is that `cargo bench`
//! compiles, runs, and prints usable numbers without network access.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver (stand-in for `criterion::Criterion`).
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _parent: self,
        }
    }

    /// Run a single stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(id, f);
        self
    }
}

/// A named collection of benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim ignores sample counts.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; the shim ignores throughput hints.
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Run one benchmark within the group.
    pub fn bench_function<I: fmt::Display, F>(&mut self, id: I, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&format!("{}/{}", self.name, id), f);
        self
    }

    /// Run one benchmark that borrows an input value.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        run_benchmark(&format!("{}/{}", self.name, id.0), |b| f(b, input));
        self
    }

    /// Finish the group (no-op in the shim).
    pub fn finish(self) {}
}

/// Identifies a benchmark within a group.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Build an id from the parameter being benchmarked.
    pub fn from_parameter<D: fmt::Display>(param: D) -> Self {
        BenchmarkId(param.to_string())
    }

    /// Build an id from a function name and a parameter.
    pub fn new<D: fmt::Display>(function: &str, param: D) -> Self {
        BenchmarkId(format!("{function}/{param}"))
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Throughput hints (accepted and ignored by the shim).
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Passed to each benchmark body; `iter` does the timing.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `f`, running it `self.iters` times.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// Calibrate an iteration count, time the body, and print the mean.
fn run_benchmark<F: FnMut(&mut Bencher)>(id: &str, mut f: F) {
    // One probe iteration to size the real run to roughly 20ms.
    let mut probe = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut probe);
    let per_iter = probe.elapsed.max(Duration::from_nanos(1));
    let target = Duration::from_millis(20);
    let iters = (target.as_nanos() / per_iter.as_nanos()).clamp(1, 1000) as u64;

    let mut bencher = Bencher {
        iters,
        elapsed: Duration::ZERO,
    };
    f(&mut bencher);
    let mean = bencher.elapsed.as_nanos() / u128::from(bencher.iters.max(1));
    println!("{id}: {} per iter ({} iters)", format_ns(mean), bencher.iters);
}

fn format_ns(ns: u128) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

/// Collect benchmark functions into a runner (stand-in for criterion's
/// macro of the same name).
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_finishes() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(10).throughput(Throughput::Elements(4));
        let mut ran = false;
        group.bench_function("trivial", |b| {
            ran = true;
            b.iter(|| black_box(1 + 1));
        });
        group.bench_with_input(BenchmarkId::from_parameter(3), &3usize, |b, n| {
            b.iter(|| black_box(n * 2));
        });
        group.finish();
        assert!(ran);
    }
}
