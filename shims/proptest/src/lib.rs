//! In-tree stand-in for the subset of the `proptest` API used by the
//! workspace's property tests, so offline builds never touch a registry.
//!
//! Differences from the real crate, by design:
//!
//! - **No shrinking.** A failing case reports the generated inputs
//!   verbatim; seeds are deterministic per test name, so failures
//!   reproduce exactly on re-run.
//! - **String "regex" strategies** ignore the pattern and generate
//!   arbitrary printable junk (plus quotes, braces, newlines) — which is
//!   precisely what the parser-totality fuzz tests want.
//! - Only the combinators the tests use exist: ranges, tuples,
//!   `prop::collection::{vec, btree_set}`, `prop::sample::select`,
//!   `any::<T>()`, and `Just`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::BTreeSet;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// Deterministic splitmix64 generator threaded through strategies.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed a generator; every stream is fully determined by `seed`.
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..bound` (`bound > 0`).
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        self.next_u64() % bound
    }
}

/// How many cases each property runs, set via
/// `#![proptest_config(ProptestConfig::with_cases(n))]`.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A generator of random values (the shim keeps proptest's name but
/// drops shrinking entirely).
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;
    /// Produce one random value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

macro_rules! int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128 % span) as i128;
                (self.start as i128 + off) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = (rng.next_u64() as u128 % span) as i128;
                (lo as i128 + off) as $t
            }
        }
    )*};
}

int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategy {
    ($($s:ident/$v:ident/$i:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$i.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A/a/0);
tuple_strategy!(A/a/0, B/b/1);
tuple_strategy!(A/a/0, B/b/1, C/c/2);
tuple_strategy!(A/a/0, B/b/1, C/c/2, D/d/3);

/// A strategy producing one fixed value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// String literals act as "regex" strategies. The shim ignores the
/// pattern and emits printable junk of length 0..=60 — adequate for
/// parser-totality fuzzing, where any input must be handled gracefully.
impl Strategy for str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        const POOL: &[char] = &[
            'a', 'b', 'z', 'A', 'Z', '0', '9', '_', ' ', '\t', '\n', '"', '\\', '{', '}', '[',
            ']', ';', ',', '.', '@', '/', '*', '%', '\u{00e9}', '\u{4e16}', '\u{1F600}',
        ];
        let len = (rng.next_u64() % 61) as usize;
        (0..len)
            .map(|_| POOL[(rng.next_u64() as usize) % POOL.len()])
            .collect()
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draw one unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arb_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy returned by [`any`].
pub struct AnyStrategy<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The strategy of all values of `T` (`any::<u64>()`, `any::<bool>()`).
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(PhantomData)
}

/// Size specification for collection strategies.
#[derive(Clone, Debug)]
pub struct SizeRange {
    lo: usize,
    hi_inclusive: usize,
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi_inclusive: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            lo: *r.start(),
            hi_inclusive: *r.end(),
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange {
            lo: n,
            hi_inclusive: n,
        }
    }
}

impl SizeRange {
    fn pick(&self, rng: &mut TestRng) -> usize {
        let span = (self.hi_inclusive - self.lo) as u64 + 1;
        self.lo + (rng.next_u64() % span) as usize
    }
}

/// Collection strategies (`prop::collection::vec`, `...::btree_set`).
pub mod collection {
    use super::{BTreeSet, SizeRange, Strategy, TestRng};

    /// Strategy for `Vec<S::Value>` with a random length.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generate vectors of values from `element`, sized within `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for `BTreeSet<S::Value>`; duplicates collapse, so the
    /// final size may undershoot the requested range (as in proptest).
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generate sets of values from `element`, sized within `size`.
    pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Sampling strategies (`prop::sample::select`).
pub mod sample {
    use super::{Strategy, TestRng};

    /// Strategy choosing uniformly from a fixed list.
    pub struct SelectStrategy<T: Clone> {
        options: Vec<T>,
    }

    /// Choose uniformly among `options` (must be non-empty).
    pub fn select<T: Clone>(options: Vec<T>) -> SelectStrategy<T> {
        assert!(!options.is_empty(), "select requires at least one option");
        SelectStrategy { options }
    }

    impl<T: Clone> Strategy for SelectStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.options[(rng.next_u64() as usize) % self.options.len()].clone()
        }
    }
}

/// Namespace mirror so `prop::collection::vec` paths work.
pub mod prop {
    pub use crate::collection;
    pub use crate::sample;
}

/// Everything a property test needs: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary, Just,
        ProptestConfig, Strategy, TestRng,
    };
}

/// Drives one property: seeds an RNG from the test name, runs
/// `config.cases` cases, and panics with the generated inputs on the
/// first failure. Called by the [`proptest!`] macro expansion.
pub fn run_property<F>(config: &ProptestConfig, name: &str, mut case: F)
where
    F: FnMut(&mut TestRng) -> (String, Result<(), String>),
{
    // FNV-1a over the test name: stable across runs and platforms.
    let mut seed = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        seed ^= u64::from(b);
        seed = seed.wrapping_mul(0x0000_0100_0000_01B3);
    }
    let mut rng = TestRng::new(seed);
    for i in 0..config.cases {
        let (inputs, result) = case(&mut rng);
        if let Err(msg) = result {
            panic!("property `{name}` failed at case {i}/{}:\n  {msg}\n  inputs: {inputs}",
                config.cases);
        }
    }
}

/// Declare property tests. Mirrors proptest's macro of the same name
/// for the forms used in this workspace:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn my_property(x in 0u32..10, ys in prop::collection::vec(any::<bool>(), 0..8)) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_items!(($config) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!(($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($config:expr)) => {};
    (($config:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            $crate::run_property(&$config, stringify!($name), |__rng| {
                $(let $arg = $crate::Strategy::generate(&$strat, __rng);)+
                let __inputs = ::std::format!(
                    ::std::concat!($(::std::stringify!($arg), " = {:?}; "),+),
                    $(&$arg),+
                );
                let __outcome: ::std::result::Result<(), ::std::string::String> =
                    (move || {
                        { $body }
                        Ok(())
                    })();
                (__inputs, __outcome)
            });
        }
        $crate::__proptest_items!(($config) $($rest)*);
    };
}

/// Assert inside a property; failures abort the case with its inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: {}", ::std::stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: {}: {}",
                ::std::stringify!($cond),
                ::std::format!($($fmt)+)
            ));
        }
    };
}

/// Assert equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: `{} == {}`\n    left: {:?}\n   right: {:?}",
                ::std::stringify!($left), ::std::stringify!($right), __l, __r
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: `{} == {}`: {}\n    left: {:?}\n   right: {:?}",
                ::std::stringify!($left), ::std::stringify!($right),
                ::std::format!($($fmt)+), __l, __r
            ));
        }
    }};
}

/// Assert inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if *__l == *__r {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: `{} != {}`\n    both: {:?}",
                ::std::stringify!($left), ::std::stringify!($right), __l
            ));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_collections_compose(
            x in 2u32..9,
            n in 1usize..=5,
            ys in prop::collection::vec((0usize..10, any::<bool>()), 0..6),
            pick in prop::sample::select(vec!["a", "b", "c"]),
            junk in "\\PC*",
        ) {
            prop_assert!((2..9).contains(&x));
            prop_assert!((1..=5).contains(&n));
            prop_assert!(ys.len() < 6);
            for (v, _flag) in &ys {
                prop_assert!(*v < 10, "v = {}", v);
            }
            prop_assert!(["a", "b", "c"].contains(&pick));
            prop_assert!(junk.chars().count() <= 60);
            prop_assert_eq!(x, x);
            prop_assert_ne!(x, x + 1);
        }
    }

    #[test]
    fn deterministic_per_name() {
        let mut a = TestRng::new(5);
        let mut b = TestRng::new(5);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    #[should_panic(expected = "property `always_fails`")]
    fn failures_panic_with_inputs() {
        crate::run_property(
            &ProptestConfig::with_cases(4),
            "always_fails",
            |_rng| ("x = 1".to_string(), Err("nope".to_string())),
        );
    }
}
