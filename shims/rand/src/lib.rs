//! In-tree stand-in for the subset of the `rand` crate used by this
//! workspace, so offline builds never touch a registry.
//!
//! The generator behind [`rngs::StdRng`] is splitmix64: tiny, fast, and
//! statistically fine for synthetic benchmark suites and fuzzing. It is
//! deterministic per seed, which the loop-suite tests rely on. The API
//! mirrors `rand 0.8` closely enough that callers written against the
//! real crate (`seed_from_u64`, `gen`, `gen_range`, `gen_bool`) compile
//! unchanged.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use core::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Produce the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Constructing a generator from a seed.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// High-level sampling helpers, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value from the "standard" distribution of `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Sample uniformly from a range (`lo..hi` or `lo..=hi`). The output
    /// type parameter lets inference flow from the use site into integer
    /// literals, as with the real crate.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Return `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Map 64 random bits to a uniform `f64` in `[0, 1)`.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Types samplable without extra parameters (`rng.gen::<T>()`).
pub trait Standard: Sized {
    /// Draw one value from `rng`.
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

/// Ranges that [`Rng::gen_range`] can sample values of type `T` from.
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range. Panics on empty ranges,
    /// matching the real crate's contract.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

/// Integers uniformly samplable via an `i128` widening round-trip.
/// A single generic `SampleRange` impl keyed on this trait keeps type
/// inference flowing from the use site into integer literals (one
/// candidate impl per range shape, as in the real crate).
pub trait UniformInt: Copy {
    /// Widen to `i128` (lossless for every integer type up to 64 bits).
    fn to_i128(self) -> i128;
    /// Narrow from `i128`; callers guarantee the value is in range.
    fn from_i128(v: i128) -> Self;
}

macro_rules! uniform_int {
    ($($t:ty),*) => {$(
        impl UniformInt for $t {
            fn to_i128(self) -> i128 {
                self as i128
            }
            fn from_i128(v: i128) -> Self {
                v as $t
            }
        }
    )*};
}

uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<T: UniformInt> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T {
        let (lo, hi) = (self.start.to_i128(), self.end.to_i128());
        assert!(lo < hi, "cannot sample empty range");
        let span = (hi - lo) as u128;
        let off = (rng.next_u64() as u128 % span) as i128;
        T::from_i128(lo + off)
    }
}

impl<T: UniformInt> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T {
        let (lo, hi) = (self.start().to_i128(), self.end().to_i128());
        assert!(lo <= hi, "cannot sample empty range");
        let span = (hi - lo) as u128 + 1;
        let off = (rng.next_u64() as u128 % span) as i128;
        T::from_i128(lo + off)
    }
}

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + unit_f64(rng.next_u64()) * (self.end - self.start)
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: splitmix64.
    ///
    /// Not the real crate's ChaCha-based `StdRng`, but deterministic per
    /// seed and plenty for synthetic workload generation.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let v = rng.gen_range(3..9);
            assert!((3..9).contains(&v));
            let w: i32 = rng.gen_range(-5..=5);
            assert!((-5..=5).contains(&w));
            let f = rng.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(1);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_700..3_300).contains(&hits), "hits = {hits}");
    }
}
