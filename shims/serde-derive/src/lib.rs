//! `#[derive(Serialize)]` for the in-tree serde shim.
//!
//! Hand-rolled token walking instead of `syn`/`quote` so the workspace
//! builds with zero registry dependencies. Supports exactly what the
//! workspace derives on: non-generic structs with named fields (plus
//! tuple and unit structs for completeness). Enums and generic structs
//! are rejected with a compile error naming this shim.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derive `serde::Serialize` (the shim trait) for a struct.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match generate(input) {
        Ok(ts) => ts,
        Err(msg) => format!("compile_error!({msg:?});").parse().unwrap(),
    }
}

fn generate(input: TokenStream) -> Result<TokenStream, String> {
    let mut tokens = input.into_iter().peekable();

    // Skip attributes (`#[...]`) and visibility (`pub`, `pub(crate)`).
    let name;
    loop {
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                tokens.next(); // the [...] group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                if let Some(TokenTree::Group(g)) = tokens.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        tokens.next();
                    }
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "struct" => {
                match tokens.next() {
                    Some(TokenTree::Ident(n)) => {
                        name = n.to_string();
                        break;
                    }
                    other => return Err(format!("expected struct name, found {other:?}")),
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "enum" || id.to_string() == "union" => {
                return Err(format!(
                    "the in-tree serde_derive shim only supports structs, not `{id}`s"
                ));
            }
            Some(_) => {}
            None => return Err("expected a struct definition".to_string()),
        }
    }

    let body = match tokens.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            let fields = named_fields(g.stream())?;
            let mut writes = String::from("out.push('{');");
            for (i, field) in fields.iter().enumerate() {
                if i > 0 {
                    writes.push_str("out.push(',');");
                }
                writes.push_str(&format!(
                    "::serde::write_json_key(out, {field:?});\
                     ::serde::Serialize::write_json(&self.{field}, out);"
                ));
            }
            writes.push_str("out.push('}');");
            writes
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            let arity = tuple_arity(g.stream());
            let mut writes = String::from("out.push('[');");
            for i in 0..arity {
                if i > 0 {
                    writes.push_str("out.push(',');");
                }
                writes.push_str(&format!(
                    "::serde::Serialize::write_json(&self.{i}, out);"
                ));
            }
            writes.push_str("out.push(']');");
            writes
        }
        Some(TokenTree::Punct(p)) if p.as_char() == ';' => "out.push_str(\"null\");".to_string(),
        Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
            return Err(format!(
                "the in-tree serde_derive shim does not support generic struct `{name}`"
            ));
        }
        other => return Err(format!("unsupported struct body: {other:?}")),
    };

    let out = format!(
        "impl ::serde::Serialize for {name} {{\
             fn write_json(&self, out: &mut ::std::string::String) {{ {body} }}\
         }}"
    );
    out.parse().map_err(|e| format!("derive expansion failed to parse: {e:?}"))
}

/// Field names of a named-field struct body, in declaration order.
fn named_fields(stream: TokenStream) -> Result<Vec<String>, String> {
    let mut fields = Vec::new();
    let mut tokens = stream.into_iter().peekable();
    loop {
        // Skip field attributes and visibility.
        loop {
            match tokens.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    tokens.next();
                    tokens.next();
                }
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    tokens.next();
                    if let Some(TokenTree::Group(g)) = tokens.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            tokens.next();
                        }
                    }
                }
                _ => break,
            }
        }
        match tokens.next() {
            None => break,
            Some(TokenTree::Ident(id)) => fields.push(id.to_string()),
            other => return Err(format!("expected field name, found {other:?}")),
        }
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => return Err(format!("expected `:` after field name, found {other:?}")),
        }
        // Consume the type: everything until a comma at angle-bracket
        // depth zero. Parenthesized/bracketed types are single groups,
        // so only `<`/`>` need depth tracking.
        let mut depth = 0i32;
        loop {
            match tokens.peek() {
                None => break,
                Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
                    depth += 1;
                    tokens.next();
                }
                Some(TokenTree::Punct(p)) if p.as_char() == '>' => {
                    depth -= 1;
                    tokens.next();
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ',' && depth == 0 => {
                    tokens.next();
                    break;
                }
                Some(_) => {
                    tokens.next();
                }
            }
        }
    }
    Ok(fields)
}

/// Number of fields in a tuple-struct body (top-level commas + 1).
fn tuple_arity(stream: TokenStream) -> usize {
    let mut depth = 0i32;
    let mut commas = 0usize;
    let mut any = false;
    for tok in stream {
        any = true;
        if let TokenTree::Punct(p) = &tok {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth -= 1,
                ',' if depth == 0 => commas += 1,
                _ => {}
            }
        }
    }
    if !any {
        0
    } else {
        commas + 1
    }
}
