//! In-tree stand-in for the subset of `serde` used by this workspace,
//! so offline builds never touch a registry.
//!
//! The real serde is a generic serialization framework; the workspace
//! only ever serializes benchmark records straight to JSON. So the shim
//! collapses the whole data-model indirection into one method: a
//! [`Serialize`] type knows how to append its JSON encoding to a
//! `String`. `#[derive(Serialize)]` (from the companion `serde_derive`
//! proc-macro shim) writes named-field structs as JSON objects, and the
//! `serde_json` shim layers `to_string`/`to_string_pretty` on top.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Write as _;

// Lets this crate's own tests use the derive, whose expansion names
// `::serde::...` paths.
extern crate self as serde;

pub use serde_derive::Serialize;

/// A type that can append its JSON encoding to a buffer.
pub trait Serialize {
    /// Append `self`, encoded as JSON, to `out`.
    fn write_json(&self, out: &mut String);
}

/// Append a JSON string literal (quoted, escaped) to `out`.
pub fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Append an object key and its separating colon (`"key":`) to `out`.
/// Called from derive-generated code.
pub fn write_json_key(out: &mut String, key: &str) {
    write_json_string(out, key);
    out.push(':');
}

macro_rules! int_serialize {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn write_json(&self, out: &mut String) {
                let _ = write!(out, "{}", self);
            }
        }
    )*};
}

int_serialize!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize);

macro_rules! float_serialize {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn write_json(&self, out: &mut String) {
                if self.is_finite() {
                    let _ = write!(out, "{}", self);
                } else {
                    // JSON has no NaN/Infinity; serde_json emits null.
                    out.push_str("null");
                }
            }
        }
    )*};
}

float_serialize!(f32, f64);

impl Serialize for bool {
    fn write_json(&self, out: &mut String) {
        out.push_str(if *self { "true" } else { "false" });
    }
}

impl Serialize for char {
    fn write_json(&self, out: &mut String) {
        let mut buf = [0u8; 4];
        write_json_string(out, self.encode_utf8(&mut buf));
    }
}

impl Serialize for str {
    fn write_json(&self, out: &mut String) {
        write_json_string(out, self);
    }
}

impl Serialize for String {
    fn write_json(&self, out: &mut String) {
        write_json_string(out, self);
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn write_json(&self, out: &mut String) {
        (**self).write_json(out);
    }
}

impl<T: Serialize> Serialize for [T] {
    fn write_json(&self, out: &mut String) {
        out.push('[');
        for (i, item) in self.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            item.write_json(out);
        }
        out.push(']');
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn write_json(&self, out: &mut String) {
        self.as_slice().write_json(out);
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn write_json(&self, out: &mut String) {
        match self {
            Some(v) => v.write_json(out),
            None => out.push_str("null"),
        }
    }
}

macro_rules! tuple_serialize {
    ($($name:ident/$idx:tt),+) => {
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn write_json(&self, out: &mut String) {
                out.push('[');
                let mut first = true;
                $(
                    if !first { out.push(','); }
                    first = false;
                    self.$idx.write_json(out);
                )+
                let _ = first;
                out.push(']');
            }
        }
    };
}

tuple_serialize!(A/0);
tuple_serialize!(A/0, B/1);
tuple_serialize!(A/0, B/1, C/2);
tuple_serialize!(A/0, B/1, C/2, D/3);

#[cfg(test)]
mod tests {
    use super::*;

    fn json<T: Serialize>(v: &T) -> String {
        let mut s = String::new();
        v.write_json(&mut s);
        s
    }

    #[test]
    fn primitives_and_containers() {
        assert_eq!(json(&3u32), "3");
        assert_eq!(json(&-4i64), "-4");
        assert_eq!(json(&2.5f64), "2.5");
        assert_eq!(json(&f64::NAN), "null");
        assert_eq!(json(&true), "true");
        assert_eq!(json(&"a\"b\n"), "\"a\\\"b\\n\"");
        assert_eq!(json(&vec![1u8, 2, 3]), "[1,2,3]");
        assert_eq!(json(&Some(1u8)), "1");
        assert_eq!(json(&None::<u8>), "null");
        assert_eq!(
            json(&vec![("x".to_string(), 4usize)]),
            "[[\"x\",4]]"
        );
    }

    #[test]
    fn derive_writes_objects() {
        #[derive(Serialize)]
        struct Rec {
            label: String,
            count: usize,
            ratio: f64,
            pairs: Vec<(String, usize)>,
        }
        let r = Rec {
            label: "x".into(),
            count: 2,
            ratio: 0.5,
            pairs: vec![("a".into(), 1)],
        };
        assert_eq!(
            json(&r),
            "{\"label\":\"x\",\"count\":2,\"ratio\":0.5,\"pairs\":[[\"a\",1]]}"
        );
    }

    #[test]
    fn derive_handles_nesting_and_generics_in_fields() {
        #[derive(Serialize)]
        struct Inner {
            v: Vec<Option<u32>>,
        }
        #[derive(Serialize)]
        struct Outer {
            inner: Inner,
            maybe: Option<String>,
        }
        let o = Outer {
            inner: Inner {
                v: vec![Some(1), None],
            },
            maybe: None,
        };
        assert_eq!(json(&o), "{\"inner\":{\"v\":[1,null]},\"maybe\":null}");
    }
}
