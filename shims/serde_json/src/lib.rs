//! In-tree stand-in for the subset of `serde_json` used by this
//! workspace: serializing benchmark records with `to_string` /
//! `to_string_pretty` over the in-tree `serde` shim.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;

/// Serialization error. The shim's writers are infallible, so this
/// exists only to keep `serde_json`-shaped signatures.
#[derive(Debug)]
pub struct Error(());

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("JSON serialization error")
    }
}

impl std::error::Error for Error {}

/// Serialize `value` to a compact JSON string.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    value.write_json(&mut out);
    Ok(out)
}

/// Serialize `value` to an indented JSON string (2-space indent, like
/// the real crate's default pretty printer).
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(prettify(&to_string(value)?))
}

/// Re-indent compact JSON. Tracks string literals (with escapes) so
/// structural characters inside strings are left alone.
fn prettify(compact: &str) -> String {
    let mut out = String::with_capacity(compact.len() * 2);
    let mut indent = 0usize;
    let mut in_string = false;
    let mut escaped = false;
    let mut chars = compact.chars().peekable();

    while let Some(c) = chars.next() {
        if in_string {
            out.push(c);
            if escaped {
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                in_string = false;
            }
            continue;
        }
        match c {
            '"' => {
                in_string = true;
                out.push(c);
            }
            '{' | '[' => {
                out.push(c);
                // Keep empty containers on one line.
                if let Some(&close) = chars.peek() {
                    if (c == '{' && close == '}') || (c == '[' && close == ']') {
                        out.push(close);
                        chars.next();
                        continue;
                    }
                }
                indent += 1;
                push_newline(&mut out, indent);
            }
            '}' | ']' => {
                indent = indent.saturating_sub(1);
                push_newline(&mut out, indent);
                out.push(c);
            }
            ',' => {
                out.push(c);
                push_newline(&mut out, indent);
            }
            ':' => {
                out.push_str(": ");
            }
            c => out.push(c),
        }
    }
    out
}

fn push_newline(out: &mut String, indent: usize) {
    out.push('\n');
    for _ in 0..indent {
        out.push_str("  ");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_and_pretty() {
        let v = vec![("a{b".to_string(), 1usize), ("c".to_string(), 2)];
        let compact = to_string(&v).unwrap();
        assert_eq!(compact, "[[\"a{b\",1],[\"c\",2]]");
        let pretty = to_string_pretty(&v).unwrap();
        assert_eq!(
            pretty,
            "[\n  [\n    \"a{b\",\n    1\n  ],\n  [\n    \"c\",\n    2\n  ]\n]"
        );
    }

    #[test]
    fn empty_containers_stay_inline() {
        let empty: Vec<u32> = Vec::new();
        assert_eq!(to_string_pretty(&empty).unwrap(), "[]");
    }
}
