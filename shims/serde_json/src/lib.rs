//! In-tree stand-in for the subset of `serde_json` used by this
//! workspace: serializing benchmark records with `to_string` /
//! `to_string_pretty` over the in-tree `serde` shim, plus a small
//! recursive-descent parser ([`from_str`] → [`Value`]) for the
//! `rmd serve` line-delimited request protocol.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;

/// Serialization error. The shim's writers are infallible, so this
/// exists only to keep `serde_json`-shaped signatures.
#[derive(Debug)]
pub struct Error(());

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("JSON serialization error")
    }
}

impl std::error::Error for Error {}

/// Serialize `value` to a compact JSON string.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    value.write_json(&mut out);
    Ok(out)
}

/// Serialize `value` to an indented JSON string (2-space indent, like
/// the real crate's default pretty printer).
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(prettify(&to_string(value)?))
}

/// Re-indent compact JSON. Tracks string literals (with escapes) so
/// structural characters inside strings are left alone.
fn prettify(compact: &str) -> String {
    let mut out = String::with_capacity(compact.len() * 2);
    let mut indent = 0usize;
    let mut in_string = false;
    let mut escaped = false;
    let mut chars = compact.chars().peekable();

    while let Some(c) = chars.next() {
        if in_string {
            out.push(c);
            if escaped {
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                in_string = false;
            }
            continue;
        }
        match c {
            '"' => {
                in_string = true;
                out.push(c);
            }
            '{' | '[' => {
                out.push(c);
                // Keep empty containers on one line.
                if let Some(&close) = chars.peek() {
                    if (c == '{' && close == '}') || (c == '[' && close == ']') {
                        out.push(close);
                        chars.next();
                        continue;
                    }
                }
                indent += 1;
                push_newline(&mut out, indent);
            }
            '}' | ']' => {
                indent = indent.saturating_sub(1);
                push_newline(&mut out, indent);
                out.push(c);
            }
            ',' => {
                out.push(c);
                push_newline(&mut out, indent);
            }
            ':' => {
                out.push_str(": ");
            }
            c => out.push(c),
        }
    }
    out
}

fn push_newline(out: &mut String, indent: usize) {
    out.push('\n');
    for _ in 0..indent {
        out.push_str("  ");
    }
}

/// A parsed JSON document.
///
/// Numbers are held as `f64` (every protocol field fits without loss;
/// [`Value::as_u64`] / [`Value::as_i64`] reject values that do not
/// round-trip exactly). Object member order is preserved.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A JSON number.
    Number(f64),
    /// A JSON string (escapes decoded).
    String(String),
    /// A JSON array.
    Array(Vec<Value>),
    /// A JSON object in source order. Duplicate keys are kept;
    /// [`Value::get`] returns the first.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Member `key` of an object, or `None` for other variants.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean payload, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The number as a `u64`, if it is one exactly (no fraction, no
    /// negative sign, no precision loss).
    pub fn as_u64(&self) -> Option<u64> {
        let n = self.as_f64()?;
        if n.fract() == 0.0 && (0.0..=9007199254740991.0).contains(&n) {
            Some(n as u64)
        } else {
            None
        }
    }

    /// The number as an `i64`, if it is one exactly.
    pub fn as_i64(&self) -> Option<i64> {
        let n = self.as_f64()?;
        if n.fract() == 0.0 && (-9007199254740991.0..=9007199254740991.0).contains(&n) {
            Some(n as i64)
        } else {
            None
        }
    }

    /// The element list, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }
}

/// Parse failure: what went wrong and the byte offset it was noticed at.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseJsonError {
    /// Human-readable description of the failure.
    pub message: String,
    /// Byte offset into the input where the failure was detected.
    pub offset: usize,
}

impl fmt::Display for ParseJsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for ParseJsonError {}

/// Parse `src` as a single JSON value; trailing non-whitespace (for
/// example a second value on the same line) is an error.
pub fn from_str(src: &str) -> Result<Value, ParseJsonError> {
    let mut p = Parser {
        bytes: src.as_bytes(),
        pos: 0,
        depth: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing data after JSON value"));
    }
    Ok(v)
}

/// Nesting depth bound: protocol frames are shallow, and a bound keeps
/// adversarial input from overflowing the parser's recursion.
const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> ParseJsonError {
        ParseJsonError {
            message: message.to_string(),
            offset: self.pos,
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8, what: &str) -> Result<(), ParseJsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(what))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, ParseJsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self) -> Result<Value, ParseJsonError> {
        if self.depth >= MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Value, ParseJsonError> {
        self.eat(b'[', "expected '['")?;
        self.depth += 1;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, ParseJsonError> {
        self.eat(b'{', "expected '{'")?;
        self.depth += 1;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Value::Object(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':', "expected ':' after object key")?;
            self.skip_ws();
            let v = self.value()?;
            members.push((key, v));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Value::Object(members));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseJsonError> {
        self.eat(b'"', "expected '\"'")?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Consume a run of plain (unescaped, non-quote) bytes at once.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            // The input is a &str, so any byte run that stops on an
            // ASCII delimiter is valid UTF-8.
            out.push_str(std::str::from_utf8(&self.bytes[start..self.pos]).expect("utf8 input"));
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: require the low half.
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.eat(b'u', "expected low surrogate")?;
                                    let lo = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&lo) {
                                        return Err(self.err("invalid low surrogate"));
                                    }
                                    let cp =
                                        0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                    char::from_u32(cp)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(hi)
                            };
                            out.push(c.ok_or_else(|| self.err("invalid \\u escape"))?);
                        }
                        _ => return Err(self.err("invalid escape character")),
                    }
                }
                Some(_) => return Err(self.err("control character in string")),
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, ParseJsonError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let b = self.peek().ok_or_else(|| self.err("truncated \\u escape"))?;
            let d = match b {
                b'0'..=b'9' => b - b'0',
                b'a'..=b'f' => b - b'a' + 10,
                b'A'..=b'F' => b - b'A' + 10,
                _ => return Err(self.err("invalid hex digit in \\u escape")),
            };
            v = v * 16 + d as u32;
            self.pos += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, ParseJsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        // Integer part: one leading zero, or a nonzero-led digit run.
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(b'1'..=b'9') => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            _ => return Err(self.err("invalid number")),
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("digit expected after decimal point"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("digit expected in exponent"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii number");
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| self.err("number out of range"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_and_pretty() {
        let v = vec![("a{b".to_string(), 1usize), ("c".to_string(), 2)];
        let compact = to_string(&v).unwrap();
        assert_eq!(compact, "[[\"a{b\",1],[\"c\",2]]");
        let pretty = to_string_pretty(&v).unwrap();
        assert_eq!(
            pretty,
            "[\n  [\n    \"a{b\",\n    1\n  ],\n  [\n    \"c\",\n    2\n  ]\n]"
        );
    }

    #[test]
    fn empty_containers_stay_inline() {
        let empty: Vec<u32> = Vec::new();
        assert_eq!(to_string_pretty(&empty).unwrap(), "[]");
    }

    #[test]
    fn parse_scalars() {
        assert_eq!(from_str("null").unwrap(), Value::Null);
        assert_eq!(from_str(" true ").unwrap(), Value::Bool(true));
        assert_eq!(from_str("false").unwrap(), Value::Bool(false));
        assert_eq!(from_str("42").unwrap(), Value::Number(42.0));
        assert_eq!(from_str("-0.5e2").unwrap(), Value::Number(-50.0));
        assert_eq!(
            from_str("\"a\\nb\\u0041\"").unwrap(),
            Value::String("a\nbA".to_string())
        );
    }

    #[test]
    fn parse_structures_and_accessors() {
        let v = from_str(r#"{"type":"schedule","edges":[[0,1,7,0]],"strict":true}"#).unwrap();
        assert_eq!(v.get("type").and_then(Value::as_str), Some("schedule"));
        assert_eq!(v.get("strict").and_then(Value::as_bool), Some(true));
        let edges = v.get("edges").and_then(Value::as_array).unwrap();
        let e0 = edges[0].as_array().unwrap();
        assert_eq!(e0[2].as_u64(), Some(7));
        assert_eq!(e0[2].as_i64(), Some(7));
        assert_eq!(from_str("-3").unwrap().as_i64(), Some(-3));
        assert_eq!(from_str("-3").unwrap().as_u64(), None);
        assert_eq!(from_str("1.5").unwrap().as_u64(), None);
    }

    #[test]
    fn parse_surrogate_pairs_and_escapes() {
        assert_eq!(
            from_str("\"\\ud83d\\ude00\"").unwrap(),
            Value::String("😀".to_string())
        );
        assert!(from_str("\"\\ud83d\"").is_err());
        assert!(from_str("\"\\x\"").is_err());
    }

    #[test]
    fn parse_rejects_malformed() {
        for bad in [
            "",
            "{",
            "{\"a\":}",
            "[1,]",
            "nul",
            "01",
            "1.",
            "\"unterminated",
            "{\"a\":1} {\"b\":2}", // interleaved frames on one line
            "{\"a\":1}x",
            "\u{1}",
        ] {
            let e = from_str(bad);
            assert!(e.is_err(), "accepted {bad:?}");
        }
        let err = from_str("{\"a\":1} {\"b\":2}").unwrap_err();
        assert_eq!(err.message, "trailing data after JSON value");
        assert_eq!(err.offset, 8);
    }

    #[test]
    fn parse_depth_bounded() {
        let deep = "[".repeat(200) + &"]".repeat(200);
        let e = from_str(&deep).unwrap_err();
        assert_eq!(e.message, "nesting too deep");
        let ok = "[".repeat(100) + &"]".repeat(100);
        assert!(from_str(&ok).is_ok());
    }

    #[test]
    fn parse_roundtrips_serialized_records() {
        let v = vec![("key \"q\"".to_string(), 7u64)];
        let s = to_string(&v).unwrap();
        let parsed = from_str(&s).unwrap();
        let outer = parsed.as_array().unwrap();
        let pair = outer[0].as_array().unwrap();
        assert_eq!(pair[0].as_str(), Some("key \"q\""));
        assert_eq!(pair[1].as_u64(), Some(7));
    }
}
