//! The automata baseline must be *exact*: a cycle-ordered sequence of
//! issues is accepted by the automaton iff direct reservation-table
//! simulation accepts it — and factored automata must agree with the
//! monolithic one.

use proptest::prelude::*;
use rmd_automata::{partition_resources, Automaton, Cursor, Direction, FactoredAutomata};
use rmd_integration::{arb_machine_spec, build_single_issue_machine, Lcg};
use rmd_machine::OpId;
use rmd_query::{ContentionQuery, DiscreteModule, OpInstance};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn automaton_agrees_with_table_simulation(
        spec in arb_machine_spec(4, 4, 4, 6),
        seed in any::<u64>(),
    ) {
        let m = build_single_issue_machine(&spec);
        let fsa = Automaton::build(&m, Direction::Forward, 1 << 18).expect("small machine");
        let mut cur = Cursor::new(&fsa);
        let mut tables = DiscreteModule::new(&m);
        let mut rng = Lcg(seed);
        let mut inst = 0u32;
        let mut cycle = 0u32;
        for _ in 0..60 {
            if rng.below(3) == 0 {
                cycle += 1;
                cur.advance_to(cycle);
            }
            let op = OpId(rng.below(m.num_operations() as u64) as u32);
            let a = cur.can_issue(op);
            let b = tables.check(op, cycle);
            prop_assert_eq!(a, b, "cycle {}: {:?}", cycle, op);
            if a {
                cur.try_issue(op);
                tables.assign(OpInstance(inst), op, cycle);
                inst += 1;
            }
        }
    }

    #[test]
    fn factored_automata_agree_with_monolithic(
        spec in arb_machine_spec(4, 4, 4, 6),
        groups in 1usize..4,
        seed in any::<u64>(),
    ) {
        let m = build_single_issue_machine(&spec);
        let mono = Automaton::build(&m, Direction::Forward, 1 << 18).expect("small");
        let p = partition_resources(&m, groups);
        let fact = FactoredAutomata::build(&m, Direction::Forward, &p, 1 << 18).expect("small");
        let mut ms = mono.start();
        let mut fs = fact.start();
        let mut rng = Lcg(seed);
        for _ in 0..60 {
            if rng.below(3) == 0 {
                ms = mono.advance(ms);
                fs = fact.advance(&fs);
            }
            let op = OpId(rng.below(m.num_operations() as u64) as u32);
            prop_assert_eq!(mono.can_issue(ms, op), fact.can_issue(&fs, op));
            if let Some(next) = mono.issue(ms, op) {
                ms = next;
                fs = fact.issue(&fs, op).expect("factored accepts");
            }
        }
    }

    #[test]
    fn reverse_automaton_accepts_reversed_schedules(
        spec in arb_machine_spec(3, 3, 4, 5),
        seed in any::<u64>(),
    ) {
        // Build a legal forward schedule, then replay it backwards
        // through the reverse automaton: it must be accepted.
        let m = build_single_issue_machine(&spec);
        let fwd = Automaton::build(&m, Direction::Forward, 1 << 18).expect("small");
        let rev = Automaton::build(&m, Direction::Reverse, 1 << 18).expect("small");

        let mut rng = Lcg(seed);
        let mut placements: Vec<(OpId, u32)> = Vec::new();
        let mut cur = Cursor::new(&fwd);
        for cycle in 0..12u32 {
            cur.advance_to(cycle);
            for _ in 0..rng.below(3) {
                let op = OpId(rng.below(m.num_operations() as u64) as u32);
                if cur.try_issue(op) {
                    placements.push((op, cycle));
                }
            }
        }
        // Replay reversed: cycle c maps to (last - c); within one cycle
        // order is irrelevant.
        let last = placements.iter().map(|&(_, c)| c).max().unwrap_or(0);
        let horizon = m.max_table_length();
        let mut rcur = Cursor::new(&rev);
        let mut rplace: Vec<(OpId, u32)> = placements
            .iter()
            // The reverse automaton sees tables reversed in time; an op
            // issued at c finishes at c + len(op) - 1, so its reversed
            // issue cycle is (last + horizon) - (c + len(op)).
            .map(|&(op, c)| {
                let len = m.operation(op).table().length();
                (op, last + horizon - c - len)
            })
            .collect();
        rplace.sort_by_key(|&(_, c)| c);
        for (op, c) in rplace {
            rcur.advance_to(c);
            prop_assert!(
                rcur.try_issue(op),
                "reverse automaton rejected a legal schedule"
            );
        }
    }
}
