//! Cross-backend conformance: every contention query backend — the
//! discrete reserved table, the bitvector table (at several packings),
//! the eager compiled-mask module, and the forward/reverse automaton
//! pair — must agree on **every** `check`, `check_window`,
//! `first_free_in`, `assign&free`, and `free` outcome of a random query
//! trace over a random machine.
//!
//! The paper's claim is representational: reduced reservation tables,
//! packed bitvectors, and hazard automata all encode the same
//! scheduling constraints. This suite is the executable form of that
//! claim. Traces are generated from a seeded [`Lcg`], so every failure
//! is reproducible from the printed `(spec, seed)` pair; shrunk
//! counterexamples live in `proptest-regressions/conformance_prop.txt`
//! and are replayed explicitly by the `regression_*` tests below.

use proptest::prelude::*;
use rmd_automata::{AutomataModule, Automaton, Direction};
use rmd_integration::{arb_machine_spec, build_single_issue_machine, Lcg, MachineSpec};
use rmd_machine::{MachineDescription, OpId};
use rmd_query::{
    BitvecModule, CompiledModule, ContentionQuery, DiscreteModule, OpInstance, WordLayout,
};

/// Fixed schedule horizon for the automata backend; trace cycles are
/// bounded so every operation fits, keeping all backends in the regime
/// where their answers are comparable.
const HORIZON: u32 = 32;

/// Events per trace. Long enough to push the bitvector module through
/// its optimistic→update transition and force automata rebuilds.
const EVENTS: usize = 60;

/// Builds one of each backend over `m` and replays a seeded random
/// trace through all of them, asserting agreement after every event.
fn replay(m: &MachineDescription, seed: u64) {
    let fwd = Automaton::build(m, Direction::Forward, 1 << 20).expect("forward automaton");
    let rev = Automaton::build(m, Direction::Reverse, 1 << 20).expect("reverse automaton");
    let widest = WordLayout::widest(64, m.num_resources());
    let mut backends: Vec<(&str, Box<dyn ContentionQuery + '_>)> = vec![
        ("discrete", Box::new(DiscreteModule::new(m))),
        ("bitvec-widest", Box::new(BitvecModule::new(m, widest))),
        (
            "bitvec-k1",
            Box::new(BitvecModule::new(m, WordLayout::with_k(64, 1))),
        ),
        ("compiled", Box::new(CompiledModule::new(m, widest))),
        ("automata", Box::new(AutomataModule::new(m, &fwd, &rev, HORIZON))),
    ];

    let max_len = m
        .operations()
        .iter()
        .map(|op| op.table().length().max(1))
        .max()
        .expect("machines have operations");
    assert!(max_len <= HORIZON, "spec tables exceed the trace horizon");
    let tmax = u64::from(HORIZON - max_len + 1);
    let nops = m.num_operations() as u64;

    let mut rng = Lcg(seed);
    let mut live: Vec<(OpInstance, OpId, u32)> = Vec::new();
    let mut next_inst = 0u32;
    for step in 0..EVENTS {
        let op = OpId(rng.below(nops) as u32);
        let t = rng.below(tmax) as u32;
        match rng.below(10) {
            // Mostly check-then-assign: the greedy scheduler idiom.
            0..=5 => {
                let answers: Vec<bool> = backends.iter_mut().map(|(_, b)| b.check(op, t)).collect();
                for (i, &a) in answers.iter().enumerate() {
                    assert_eq!(
                        answers[0], a,
                        "step {step}: check({op:?}, {t}) disagrees: \
                         {} says {} but {} says {a}",
                        backends[0].0, answers[0], backends[i].0
                    );
                }
                if answers[0] {
                    let inst = OpInstance(next_inst);
                    next_inst += 1;
                    for (_, b) in backends.iter_mut() {
                        b.assign(inst, op, t);
                    }
                    live.push((inst, op, t));
                }
            }
            // Displacing placement: evictions must match exactly,
            // including order.
            6..=7 => {
                let inst = OpInstance(next_inst);
                next_inst += 1;
                let evictions: Vec<Vec<OpInstance>> = backends
                    .iter_mut()
                    .map(|(_, b)| b.assign_free(inst, op, t))
                    .collect();
                for (i, e) in evictions.iter().enumerate() {
                    assert_eq!(
                        &evictions[0], e,
                        "step {step}: assign_free({op:?}, {t}) evictions disagree \
                         between {} and {}",
                        backends[0].0, backends[i].0
                    );
                }
                live.retain(|(x, _, _)| !evictions[0].contains(x));
                live.push((inst, op, t));
            }
            // Unschedule a random live instance.
            _ => {
                if !live.is_empty() {
                    let idx = rng.below(live.len() as u64) as usize;
                    let (inst, lop, lt) = live.remove(idx);
                    for (_, b) in backends.iter_mut() {
                        b.free(inst, lop, lt);
                    }
                }
            }
        }
        let counts: Vec<usize> = backends.iter().map(|(_, b)| b.num_scheduled()).collect();
        assert!(
            counts.iter().all(|&c| c == counts[0]),
            "step {step}: scheduled counts diverge: {counts:?}"
        );

        // Window conformance: at every step, a batched `check_window`
        // over a random span must equal the bitmask assembled from
        // individual `check` calls, on every backend — and the backends
        // must agree with each other. `first_free_in` must land on the
        // lowest set bit of that mask.
        let wop = OpId(rng.below(nops) as u32);
        let ws = rng.below(tmax) as u32;
        let wlen = 1 + rng.below((tmax as u32 - ws).min(64).into()) as u32;
        let masks: Vec<u64> = backends
            .iter_mut()
            .map(|(name, b)| {
                let got = b.check_window(wop, ws, wlen);
                let mut want = 0u64;
                for i in 0..wlen {
                    if b.check(wop, ws + i) {
                        want |= 1u64 << i;
                    }
                }
                assert_eq!(
                    got, want,
                    "step {step}: {name} check_window({wop:?}, {ws}, {wlen}) = \
                     {got:#x} but scalar checks assemble {want:#x}"
                );
                let first = b.first_free_in(wop, ws, wlen);
                let expect = (want != 0).then(|| ws + want.trailing_zeros());
                assert_eq!(
                    first, expect,
                    "step {step}: {name} first_free_in({wop:?}, {ws}, {wlen}) \
                     disagrees with its own window mask {want:#x}"
                );
                got
            })
            .collect();
        for (i, &mask) in masks.iter().enumerate() {
            assert_eq!(
                masks[0], mask,
                "step {step}: check_window({wop:?}, {ws}, {wlen}) disagrees \
                 between {} and {}",
                backends[0].0, backends[i].0
            );
        }
    }

    // Exhaustive sweep: after the trace, every (op, cycle) check must
    // agree across all backends.
    for opi in 0..m.num_operations() {
        let op = OpId(opi as u32);
        for t in 0..tmax as u32 {
            let answers: Vec<bool> = backends.iter_mut().map(|(_, b)| b.check(op, t)).collect();
            for (i, &a) in answers.iter().enumerate() {
                assert_eq!(
                    answers[0], a,
                    "final sweep: check({op:?}, {t}) disagrees between {} and {}",
                    backends[0].0, backends[i].0
                );
            }
        }
    }
}

proptest! {
    // 256 cases; every case exercises all backend pairs jointly, so
    // each of the C(5,2) pairs sees >= 256 random traces.
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn backends_agree_on_random_traces(
        // Small machines keep the unminimized automata tractable; the
        // shared single-issue resource bounds in-flight operations.
        spec in arb_machine_spec(4, 4, 4, 6),
        seed in any::<u64>(),
    ) {
        let m = build_single_issue_machine(&spec);
        replay(&m, seed);
    }
}

/// Replay of shrunk counterexamples (see
/// `proptest-regressions/conformance_prop.txt`): machines whose shapes
/// once exposed disagreements while the adapter backends were being
/// built — a one-op self-conflicting table, and a pair whose spans
/// nest strictly (the case only the automata pair's span replay sees).
#[test]
fn regression_minimal_machines() {
    let specs: [MachineSpec; 3] = [
        vec![vec![(0, 0), (0, 2)]],
        vec![vec![(0, 0), (1, 3)], vec![(1, 1)]],
        vec![vec![(0, 5)], vec![(0, 0), (0, 5)], vec![(1, 2), (0, 3)]],
    ];
    for (i, spec) in specs.iter().enumerate() {
        let m = build_single_issue_machine(spec);
        for seed in [0u64, 1, 0xDEAD_BEEF, u64::MAX] {
            replay(&m, seed);
        }
        // Also exercise the machine without the issue resource: wider
        // concurrency, different automata state shapes.
        let m = rmd_integration::build_machine(spec);
        replay(&m, 42 + i as u64);
    }
}
