//! Model-based property tests: the custom containers against reference
//! implementations, and total-ness of the MDL front end.

use proptest::prelude::*;
use rmd_latency::{BitSet, LatencySet};
use rmd_machine::{ReservationTable, ResourceId};
use std::collections::BTreeSet;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn bitset_matches_btreeset(ops in prop::collection::vec((0usize..500, any::<bool>()), 0..80)) {
        let mut sut = BitSet::new();
        let mut model = BTreeSet::new();
        for (x, insert) in ops {
            if insert {
                prop_assert_eq!(sut.insert(x), model.insert(x));
            } else {
                prop_assert_eq!(sut.remove(x), model.remove(&x));
            }
            prop_assert_eq!(sut.len(), model.len());
        }
        prop_assert_eq!(sut.iter().collect::<Vec<_>>(), model.into_iter().collect::<Vec<_>>());
    }

    #[test]
    fn bitset_algebra_matches_model(
        a in prop::collection::btree_set(0usize..200, 0..40),
        b in prop::collection::btree_set(0usize..200, 0..40),
    ) {
        let sa: BitSet = a.iter().copied().collect();
        let sb: BitSet = b.iter().copied().collect();
        let mut union = sa.clone();
        union.union_with(&sb);
        prop_assert_eq!(
            union.iter().collect::<BTreeSet<_>>(),
            a.union(&b).copied().collect::<BTreeSet<_>>()
        );
        let mut inter = sa.clone();
        inter.intersect_with(&sb);
        prop_assert_eq!(
            inter.iter().collect::<BTreeSet<_>>(),
            a.intersection(&b).copied().collect::<BTreeSet<_>>()
        );
        let mut diff = sa.clone();
        diff.difference_with(&sb);
        prop_assert_eq!(
            diff.iter().collect::<BTreeSet<_>>(),
            a.difference(&b).copied().collect::<BTreeSet<_>>()
        );
        prop_assert_eq!(sa.is_subset(&sb), a.is_subset(&b));
        prop_assert_eq!(sa.is_disjoint(&sb), a.is_disjoint(&b));
    }

    #[test]
    fn latency_set_matches_btreeset(xs in prop::collection::vec(-300i32..300, 0..60)) {
        let mut sut = LatencySet::new();
        let mut model = BTreeSet::new();
        for x in &xs {
            prop_assert_eq!(sut.insert(*x), model.insert(*x));
        }
        prop_assert_eq!(sut.iter().collect::<Vec<_>>(), model.iter().copied().collect::<Vec<_>>());
        prop_assert_eq!(sut.len(), model.len());
        prop_assert_eq!(sut.max(), model.last().copied());
        for probe in -310..310 {
            prop_assert_eq!(sut.contains(probe), model.contains(&probe));
        }
        // Mirror is an involution and negates every element.
        let mirrored = sut.mirrored();
        prop_assert_eq!(
            mirrored.iter().collect::<Vec<_>>(),
            model.iter().rev().map(|&x| -x).collect::<Vec<_>>()
        );
        prop_assert_eq!(mirrored.mirrored(), sut);
    }

    #[test]
    fn collides_at_is_mirror_symmetric(
        a in prop::collection::vec((0u32..4, 0u32..8), 1..6),
        b in prop::collection::vec((0u32..4, 0u32..8), 1..6),
        lat in -12i64..12,
    ) {
        let ta = ReservationTable::from_usages(a.into_iter().map(|(r, c)| (ResourceId(r), c)));
        let tb = ReservationTable::from_usages(b.into_iter().map(|(r, c)| (ResourceId(r), c)));
        // "B issues `lat` after A" collides iff "A issues `-lat` after B".
        prop_assert_eq!(ta.collides_at(&tb, lat), tb.collides_at(&ta, -lat));
    }

    #[test]
    fn mdl_parser_is_total(src in "\\PC*") {
        // Arbitrary junk must yield Ok or Err — never a panic.
        let _ = rmd_machine::mdl::parse(&src);
    }

    #[test]
    fn mdl_parser_is_total_on_structured_junk(
        parts in prop::collection::vec(
            prop::sample::select(vec![
                "machine", "\"m\"", "{", "}", "resources", ";", "op", "use",
                "@", "..", ",", "alt", "weight", "1", "2.5", "ident", "[", "]",
            ]),
            0..40,
        )
    ) {
        let src = parts.join(" ");
        let _ = rmd_machine::mdl::parse(&src);
    }
}
