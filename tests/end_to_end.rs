//! End-to-end pipeline tests over every prebuilt machine model: reduce
//! under every objective, verify exact equivalence, and check that the
//! paper's headline monotonicities hold.

use rmd_core::{avg_word_usages, reduce, verify_equivalence, Objective};
use rmd_latency::{ClassPartition, ForbiddenMatrix};
use rmd_machine::models::{all_machines, cydra5, cydra5_subset, example_machine};

#[test]
fn every_model_reduces_equivalently_under_every_objective() {
    for m in all_machines() {
        for objective in [
            Objective::ResUses,
            Objective::KCycleWord { k: 1 },
            Objective::KCycleWord { k: 2 },
            Objective::KCycleWord { k: 4 },
            Objective::KCycleWord { k: 7 },
        ] {
            let red = reduce(&m, objective);
            verify_equivalence(&m, &red.reduced)
                .unwrap_or_else(|e| panic!("{} under {objective:?}: {e}", m.name()));
        }
    }
}

#[test]
fn reduction_shrinks_resources_and_usages() {
    for m in all_machines() {
        let red = reduce(&m, Objective::ResUses);
        assert!(
            red.reduced_classes.num_resources() <= m.num_resources(),
            "{}",
            m.name()
        );
        let classes = red.class_machine.avg_usages_per_op();
        let reduced = red.reduced_classes.avg_usages_per_op();
        assert!(
            reduced <= classes,
            "{}: usages/class {reduced} > {classes}",
            m.name()
        );
    }
}

#[test]
fn word_objective_improves_on_the_original_at_its_k() {
    // The k-tuned reduction must always beat the original description's
    // word usages at k, and should essentially match or beat the
    // k=1-tuned reduction there (greedy selection admits a small slack).
    for m in all_machines() {
        let k1 = reduce(&m, Objective::KCycleWord { k: 1 });
        for k in [2u32, 4] {
            let kk = reduce(&m, Objective::KCycleWord { k });
            let at_k = avg_word_usages(&kk.reduced_classes, k);
            let original = avg_word_usages(&kk.class_machine, k);
            assert!(
                at_k < original,
                "{} k={k}: reduced {at_k} !< original {original}",
                m.name()
            );
            let baseline = avg_word_usages(&k1.reduced_classes, k);
            assert!(
                at_k <= baseline * 1.15 + 1e-9,
                "{} k={k}: {at_k} far above the k=1 reduction's {baseline}",
                m.name()
            );
        }
    }
}

#[test]
fn figure_1_numbers_are_exact() {
    let m = example_machine();
    let red = reduce(&m, Objective::ResUses);
    assert_eq!(red.reduced.num_resources(), 2);
    let a = red.reduced.operation(red.reduced.op_by_name("A").unwrap());
    let b = red.reduced.operation(red.reduced.op_by_name("B").unwrap());
    assert_eq!((a.table().num_usages(), b.table().num_usages()), (1, 4));
}

#[test]
fn class_count_is_preserved_by_reduction() {
    for m in all_machines() {
        let red = reduce(&m, Objective::ResUses);
        let f2 = ForbiddenMatrix::compute(&red.reduced);
        let p2 = ClassPartition::compute(&red.reduced, &f2);
        assert_eq!(
            red.classes.num_classes(),
            p2.num_classes(),
            "{}: classes changed under reduction",
            m.name()
        );
        // And the partition itself is identical.
        for (id, _) in red.reduced.ops() {
            assert_eq!(red.classes.class_of(id), p2.class_of(id), "{}", m.name());
        }
    }
}

#[test]
fn double_reduction_is_stable() {
    // Reducing an already-reduced machine must preserve equivalence and
    // never grow the description.
    for m in [example_machine(), cydra5_subset()] {
        let once = reduce(&m, Objective::ResUses);
        let twice = reduce(&once.reduced, Objective::ResUses);
        verify_equivalence(&m, &twice.reduced).expect("still equivalent");
        assert!(twice.reduced.total_usages() <= once.reduced.total_usages());
        assert!(twice.reduced.num_resources() <= once.reduced.num_resources());
    }
}

#[test]
fn cydra_reduction_matches_paper_regime() {
    let m = cydra5();
    let red = reduce(&m, Objective::ResUses);
    // Paper: 56 -> 15 resources (x3.7), usages 18.2 -> 8.3 (x2.2). Our
    // reconstruction is sparser, but the multi-x shape must hold.
    let res_ratio = m.num_resources() as f64 / red.reduced_classes.num_resources() as f64;
    assert!(res_ratio >= 1.5, "resource ratio {res_ratio}");
    let use_ratio =
        red.class_machine.avg_usages_per_op() / red.reduced_classes.avg_usages_per_op();
    assert!(use_ratio >= 1.3, "usage ratio {use_ratio}");
}
