//! Property-based tests of the reduction's core guarantee (paper §3):
//! for *any* machine, the reduced description produces exactly the same
//! forbidden-latency matrix — plus Theorem 1's completeness on small
//! machines, checked against brute-force maximal-clique enumeration.

use proptest::prelude::*;
use rmd_core::{generating_set, prune_dominated, reduce, verify_equivalence, Objective};
use rmd_core::{SynthResource, SynthUsage};
use rmd_integration::{arb_machine_spec, build_machine};
use rmd_latency::{ClassPartition, ForbiddenMatrix};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn reduction_preserves_forbidden_matrix(
        spec in arb_machine_spec(5, 5, 6, 9),
        k in 1u32..5,
    ) {
        let m = build_machine(&spec);
        for objective in [Objective::ResUses, Objective::KCycleWord { k }] {
            let red = reduce(&m, objective);
            prop_assert!(verify_equivalence(&m, &red.reduced).is_ok());
        }
    }

    #[test]
    fn generating_set_resources_are_valid_and_cover(
        spec in arb_machine_spec(4, 4, 5, 7),
    ) {
        let m = build_machine(&spec);
        let f = ForbiddenMatrix::compute(&m);
        let classes = ClassPartition::compute(&m, &f);
        let cm = classes.class_machine(&m).unwrap();
        let cf = ForbiddenMatrix::compute(&cm);
        let set = prune_dominated(&generating_set(&cf));
        // Validity: no resource forbids a latency not in the matrix.
        for r in &set {
            prop_assert!(r.is_valid(&cf), "invalid resource {r}");
        }
        // Coverage: every nonnegative forbidden latency is generated.
        let mut covered = std::collections::HashSet::new();
        for r in &set {
            covered.extend(r.forbidden_triples());
        }
        for x in 0..cf.num_ops() {
            for y in 0..cf.num_ops() {
                for lat in cf.get_idx(x, y).iter_nonneg() {
                    prop_assert!(
                        covered.contains(&(x as u32, y as u32, lat)),
                        "{lat} ∈ F[{x}][{y}] uncovered"
                    );
                }
            }
        }
    }

    #[test]
    fn all_maximal_resources_are_found(
        spec in arb_machine_spec(3, 3, 4, 5),
    ) {
        // Theorem 1, brute force: enumerate every maximal valid usage set
        // (anchored at cycle 0) and check each appears in the generating
        // set. Only tractable for tiny machines.
        let m = build_machine(&spec);
        let f = ForbiddenMatrix::compute(&m);
        let classes = ClassPartition::compute(&m, &f);
        let cm = classes.class_machine(&m).unwrap();
        let cf = ForbiddenMatrix::compute(&cm);

        let max_lat = cf.max_latency().max(0) as u32;
        let n = cf.num_ops() as u32;
        // Universe of usages within the latency horizon.
        let universe: Vec<SynthUsage> = (0..n)
            .flat_map(|c| (0..=max_lat).map(move |cy| SynthUsage::new(c, cy)))
            .collect();

        let genset = generating_set(&cf);

        // Depth-first maximal clique enumeration over the compatibility
        // graph, keeping only cliques with a cycle-0 usage.
        let compatible = |a: SynthUsage, b: SynthUsage| {
            let d = i64::from(b.cycle) - i64::from(a.cycle);
            cf.get_idx(a.class as usize, b.class as usize).contains(d as i32)
        };
        let mut maximal: Vec<SynthResource> = Vec::new();
        // Bron-Kerbosch without pivoting (universe is small).
        fn bk(
            r: &mut Vec<SynthUsage>,
            mut p: Vec<SynthUsage>,
            mut x: Vec<SynthUsage>,
            compatible: &dyn Fn(SynthUsage, SynthUsage) -> bool,
            out: &mut Vec<SynthResource>,
        ) {
            if p.is_empty() && x.is_empty() {
                if !r.is_empty() {
                    out.push(SynthResource::from_usages(r.iter().copied()));
                }
                return;
            }
            while let Some(v) = p.pop() {
                let np: Vec<_> = p.iter().copied().filter(|&u| compatible(u, v)).collect();
                let nx: Vec<_> = x.iter().copied().filter(|&u| compatible(u, v)).collect();
                r.push(v);
                bk(r, np, nx, compatible, out);
                r.pop();
                x.push(v);
            }
        }
        // Self-compatibility required for membership at all.
        let nodes: Vec<SynthUsage> = universe
            .into_iter()
            .filter(|&u| compatible(u, u))
            .collect();
        bk(
            &mut Vec::new(),
            nodes,
            Vec::new(),
            &compatible,
            &mut maximal,
        );

        for mr in maximal {
            let anchored = mr.anchored();
            // Only cliques anchored at 0 are canonical maximal resources;
            // shifted variants are redundant.
            if anchored != mr {
                continue;
            }
            if mr.len() >= 2 {
                prop_assert!(
                    genset.iter().any(|g| mr.is_subset(g)),
                    "maximal resource {mr} missing from generating set"
                );
            } else {
                // Corner case the paper's Theorem 1 glosses over: a
                // single-usage set {X@0} can be maximal even when X has
                // (only negative-side) cross latencies, in which case
                // Rule 4 does not fire. The resource itself is redundant
                // — any X usage generates its sole triple (X, X, 0) — so
                // the guarantee that matters is coverage:
                let x = mr.usages()[0].class;
                prop_assert!(
                    genset
                        .iter()
                        .any(|g| g.usages().iter().any(|u| u.class == x)),
                    "no resource carries any usage of class {x}"
                );
            }
        }
    }
}
