//! Cross-crate fingerprint equality.
//!
//! Three crates derive stable identities from FNV-1a 64: rmd-machine
//! (content fingerprints over canonical MDL), rmd-core (forbidden-matrix
//! fingerprints over `(x, y, latency)` triples), and rmd-serve (suite
//! digests). All three now consume the one definition in
//! `rmd_machine::fnv`; these tests pin that the shared hasher reproduces
//! each consumer's published values — including the golden certificate
//! values committed under `certs/`, which must never drift.

use rmd_core::fingerprints::{matrix_fingerprint, matrix_fingerprint_hex};
use rmd_latency::ForbiddenMatrix;
use rmd_machine::fnv::{fnv1a64, Fnv64};
use rmd_machine::{content_fingerprint, mdl, models};

/// The content fingerprint is exactly the shared byte-wise FNV-1a of
/// the canonical MDL rendering, for every built-in model.
#[test]
fn content_fingerprint_is_shared_fnv_over_canonical_mdl() {
    for m in [
        models::example_machine(),
        models::alpha21064(),
        models::mips_r3000(),
        models::cydra5(),
        models::cydra5_subset(),
    ] {
        let expected = format!("rmd-{:016x}", fnv1a64(mdl::print(&m).as_bytes()));
        assert_eq!(content_fingerprint(&m), expected, "{}", m.name());
    }
}

/// The matrix fingerprint is exactly the shared whole-`u64` FNV-1a mix
/// over the matrix's `(x, y, latency)` triples in row-major order.
#[test]
fn matrix_fingerprint_is_shared_fnv_over_triples() {
    for m in [models::example_machine(), models::cydra5_subset()] {
        let f = ForbiddenMatrix::compute(&m);
        let mut h = Fnv64::new();
        for x in 0..f.num_ops() {
            for y in 0..f.num_ops() {
                for lat in f.get_idx(x, y).iter() {
                    h.mix_u64(x as u64);
                    h.mix_u64(y as u64);
                    h.mix_u64(lat as u32 as u64);
                }
            }
        }
        assert_eq!(matrix_fingerprint(&f), h.finish(), "{}", m.name());
    }
}

/// The exact values the golden certificate `certs/fig1.json` pins.
/// If this test fails, the shared-FNV refactor changed a published
/// identity and every committed certificate is invalid.
#[test]
fn golden_certificate_values_preserved() {
    let m = models::example_machine();
    assert_eq!(content_fingerprint(&m), "rmd-238acfe54e473d20");
    let f = ForbiddenMatrix::compute(&m);
    assert_eq!(matrix_fingerprint_hex(&f), "48cea655493a9943");
}
