//! Shared strategies and helpers for the integration tests.

use proptest::prelude::*;
use rmd_machine::{MachineBuilder, MachineDescription};

/// A compact description of a random machine: per operation, a list of
/// `(resource, cycle)` usages.
pub type MachineSpec = Vec<Vec<(u32, u32)>>;

/// Proptest strategy for small random machines: up to `max_res`
/// resources, `max_ops` operations, each with 1..=`max_usages` usages in
/// cycles `0..max_cycle`.
pub fn arb_machine_spec(
    max_res: u32,
    max_ops: usize,
    max_usages: usize,
    max_cycle: u32,
) -> impl Strategy<Value = MachineSpec> {
    prop::collection::vec(
        prop::collection::vec((0..max_res, 0..max_cycle), 1..=max_usages),
        1..=max_ops,
    )
}

/// Builds the machine a spec describes. Resources are allocated densely
/// (`r0..`); duplicate usages collapse.
pub fn build_machine(spec: &MachineSpec) -> MachineDescription {
    let max_res = spec
        .iter()
        .flatten()
        .map(|&(r, _)| r)
        .max()
        .unwrap_or(0);
    let mut b = MachineBuilder::new("prop");
    let rs: Vec<_> = (0..=max_res).map(|i| b.resource(format!("r{i}"))).collect();
    for (i, usages) in spec.iter().enumerate() {
        let mut ob = b.operation(format!("op{i}"));
        for &(r, c) in usages {
            ob = ob.usage(rs[r as usize], c);
        }
        ob.finish();
    }
    b.build().expect("spec machines are valid")
}

/// Like [`build_machine`], but every operation also reserves a shared
/// issue stage in cycle 0 (a single-issue machine). Keeps automaton
/// state spaces small — without it, machines whose usages all sit at
/// late offsets can stack unboundedly many in-flight operations and the
/// unminimized automaton explodes (the paper's §2 size concern).
pub fn build_single_issue_machine(spec: &MachineSpec) -> MachineDescription {
    let max_res = spec.iter().flatten().map(|&(r, _)| r).max().unwrap_or(0);
    let mut b = MachineBuilder::new("prop-si");
    let issue = b.resource("issue");
    let rs: Vec<_> = (0..=max_res).map(|i| b.resource(format!("r{i}"))).collect();
    for (i, usages) in spec.iter().enumerate() {
        let mut ob = b.operation(format!("op{i}")).usage(issue, 0);
        for &(r, c) in usages {
            ob = ob.usage(rs[r as usize], c);
        }
        ob.finish();
    }
    b.build().expect("spec machines are valid")
}

/// Deterministic pseudo-random sequence generator for query scripts.
pub struct Lcg(pub u64);

impl Lcg {
    /// Next raw value.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 16
    }

    /// Next value in `0..n`.
    pub fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
}
