//! The linter as a mutation oracle: every *semantic* description-level
//! mutant — one whose forbidden-latency matrix differs from the
//! original's — visibly changes the lint report, because the `RMD-L009`
//! redundancy finding embeds a fingerprint of the matrix. Neutral
//! mutants (same matrix, reshuffled structure) keep the fingerprint.

use rmd_analyze::{lint_machine, Report};
use rmd_fault::{mutate, MutantPayload, ALL_OPERATORS};
use rmd_machine::models;

/// Extracts the forbidden-matrix fingerprint from a report's `RMD-L009`
/// finding (`… matrix fingerprint <16 hex digits>: …`).
fn matrix_fingerprint(report: &Report) -> u64 {
    let d = report
        .diagnostics
        .iter()
        .find(|d| d.id == "RMD-L009")
        .unwrap_or_else(|| panic!("L009 always present: {}", report.render_text()));
    let tail = d
        .message
        .split("matrix fingerprint ")
        .nth(1)
        .expect("fingerprint in message");
    u64::from_str_radix(&tail[..16], 16).expect("16 hex digits")
}

#[test]
fn semantic_mutants_change_the_lint_fingerprint() {
    for m in [models::example_machine(), models::cydra5_subset()] {
        let base_fp = matrix_fingerprint(&lint_machine(&m));
        let mut semantic = 0;
        let mut neutral = 0;
        for op in ALL_OPERATORS {
            for seed in 0..8u64 {
                let Some(mu) = mutate(&m, op, seed) else { continue };
                // Description-level payloads only; bitvector word
                // corruption never touches the description.
                let mutant = match &mu.payload {
                    MutantPayload::Machine(m2) | MutantPayload::ReducedMachine(m2) => m2,
                    MutantPayload::QueryWord { .. } => continue,
                };
                let fp = matrix_fingerprint(&lint_machine(mutant));
                if mu.is_semantic(&m) {
                    semantic += 1;
                    assert_ne!(
                        fp, base_fp,
                        "{}: semantic mutant invisible to lint: {} ({})",
                        m.name(),
                        mu.what,
                        mu.op
                    );
                } else {
                    neutral += 1;
                    assert_eq!(
                        fp, base_fp,
                        "{}: neutral mutant changed the fingerprint: {} ({})",
                        m.name(),
                        mu.what,
                        mu.op
                    );
                }
            }
        }
        // The operator set must have exercised both sides of the
        // semantic/neutral split for the oracle claim to mean anything.
        assert!(semantic >= 8, "{}: only {semantic} semantic mutants", m.name());
        assert!(neutral >= 1, "{}: no neutral mutants seen", m.name());
    }
}

#[test]
fn a_dead_resource_mutant_is_flagged_by_name() {
    // Beyond the fingerprint, structural lints catch the archetypal
    // corruption directly: redirecting every usage of a resource onto
    // another leaves the donor dead (RMD-L001).
    let m = models::example_machine();
    let mut seen = false;
    for seed in 0..32u64 {
        let Some(mu) = mutate(&m, rmd_fault::MutationOp::MergeResources, seed) else {
            continue;
        };
        let MutantPayload::Machine(m2) = &mu.payload else { continue };
        let report = lint_machine(m2);
        if report.diagnostics.iter().any(|d| d.id == "RMD-L001") {
            seen = true;
            break;
        }
    }
    assert!(seen, "merge-resources never produced a dead-resource finding");
}
