//! Lint/pipeline contract properties: a description the linter passes
//! without error-severity findings is one the reduction pipeline
//! handles without falling back, and reduction preserves that
//! cleanliness.

use proptest::prelude::*;
use rmd_analyze::lint_machine;
use rmd_core::{reduce_with_fallback, Objective, ReduceOptions};
use rmd_integration::{arb_machine_spec, build_machine};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The tentpole contract: error-lint-clean implies
    /// `reduce_with_fallback` succeeds outright — no fallback event,
    /// a verified reduction present.
    #[test]
    fn error_clean_machines_reduce_without_fallback(
        spec in arb_machine_spec(6, 6, 6, 12),
    ) {
        let m = build_machine(&spec);
        let report = lint_machine(&m);
        // Builder-valid machines are always error-clean (warnings and
        // infos are fair game) — the premise holds by construction.
        prop_assert_eq!(report.errors(), 0, "{}", report.render_text());
        let out = reduce_with_fallback(&m, Objective::ResUses, &ReduceOptions::default());
        prop_assert!(
            !out.used_fallback(),
            "{}: lint-clean machine fell back: {:?}",
            m.name(),
            out.fallback
        );
        prop_assert!(out.reduction.is_some());
    }

    /// Reduction output stays error-clean: the pipeline never turns a
    /// clean description into one the linter rejects.
    #[test]
    fn reduction_preserves_error_cleanliness(
        spec in arb_machine_spec(5, 5, 5, 10),
    ) {
        let m = build_machine(&spec);
        prop_assert_eq!(lint_machine(&m).errors(), 0);
        let out = reduce_with_fallback(&m, Objective::ResUses, &ReduceOptions::default());
        let report = lint_machine(&out.machine);
        prop_assert_eq!(
            report.errors(),
            0,
            "reduced machine has lint errors: {}",
            report.render_text()
        );
    }
}

#[test]
fn builder_valid_machines_are_error_clean() {
    // The validating builder and the error-severity lints agree on what
    // a broken description is: anything the builder accepts has no
    // error findings (warnings and infos are fair game).
    for m in rmd_machine::models::all_machines() {
        let report = lint_machine(&m);
        assert_eq!(report.errors(), 0, "{}: {}", m.name(), report.render_text());
    }
}
