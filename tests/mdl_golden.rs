//! Golden files: `machines/*.mdl` ships textual renderings of the
//! built-in models, and this test keeps them byte-identical to what
//! `mdl::print` produces from the in-code constructors. Regenerate
//! after editing a model with:
//!
//! ```text
//! cargo test -p rmd-integration --test mdl_golden -- --ignored
//! ```

use rmd_latency::ForbiddenMatrix;
use rmd_machine::{mdl, models, MachineDescription};
use std::path::PathBuf;

/// The models that ship as golden `.mdl` files, keyed by file stem.
fn golden_models() -> Vec<(&'static str, MachineDescription)> {
    vec![
        ("example", models::example_machine()),
        ("cydra5_subset", models::cydra5_subset()),
        ("alpha21064", models::alpha21064()),
        ("mips_r3000", models::mips_r3000()),
    ]
}

fn golden_path(stem: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join(format!("../machines/{stem}.mdl"))
}

#[test]
fn shipped_renderings_match_the_builtin_models() {
    for (stem, m) in golden_models() {
        let path = golden_path(stem);
        let shipped = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            panic!(
                "{}: {e} — regenerate with \
                 `cargo test -p rmd-integration --test mdl_golden -- --ignored`",
                path.display()
            )
        });
        assert_eq!(
            shipped,
            mdl::print(&m),
            "{stem}: machines/{stem}.mdl is stale; regenerate with \
             `cargo test -p rmd-integration --test mdl_golden -- --ignored`"
        );
    }
}

#[test]
fn shipped_renderings_reparse_to_equivalent_machines() {
    // Byte equality above is about review hygiene; this is the semantic
    // guarantee — the shipped text denotes exactly the built-in model.
    for (stem, m) in golden_models() {
        let text = std::fs::read_to_string(golden_path(stem)).expect("golden present");
        let (back, _) =
            mdl::parse_machine(&text).unwrap_or_else(|e| panic!("{stem}: {e}"));
        assert_eq!(back, m, "{stem}: reparse equality");
        assert_eq!(
            ForbiddenMatrix::compute(&back),
            ForbiddenMatrix::compute(&m),
            "{stem}: forbidden-matrix round trip"
        );
    }
}

/// Machines that exist only as files (no in-code constructor): the
/// hand-written zoo plus vliw_dsp. No byte-identity oracle exists for
/// these, so the guarantee is purely semantic: parse, pretty-print,
/// reparse, and demand an equivalent machine with an identical
/// forbidden matrix.
const FILE_ONLY_MACHINES: &[&str] = &[
    "vliw_dsp",
    "zoo_deep_np",
    "zoo_clustered",
    "zoo_wide_issue",
];

#[test]
fn file_only_machines_round_trip_through_the_printer() {
    for stem in FILE_ONLY_MACHINES {
        let text = std::fs::read_to_string(golden_path(stem))
            .unwrap_or_else(|e| panic!("{stem}: {e}"));
        let (m, _) = mdl::parse_machine(&text).unwrap_or_else(|e| panic!("{stem}: {e}"));
        let printed = mdl::print(&m);
        let (back, _) =
            mdl::parse_machine(&printed).unwrap_or_else(|e| panic!("{stem} reprint: {e}"));
        assert_eq!(back, m, "{stem}: print/reparse equality");
        assert_eq!(
            ForbiddenMatrix::compute(&back),
            ForbiddenMatrix::compute(&m),
            "{stem}: forbidden-matrix round trip"
        );
    }
}

#[test]
#[ignore = "writes machines/*.mdl; run explicitly after editing a built-in model"]
fn regenerate_golden_renderings() {
    for (stem, m) in golden_models() {
        let path = golden_path(stem);
        std::fs::write(&path, mdl::print(&m))
            .unwrap_or_else(|e| panic!("{}: {e}", path.display()));
    }
}
