//! MDL round-trip properties: printing any machine and re-parsing it
//! yields an equal machine, and reduction composes with the textual
//! format.

use proptest::prelude::*;
use rmd_core::{reduce, verify_equivalence, Objective};
use rmd_integration::{arb_machine_spec, build_machine};
use rmd_machine::mdl;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn print_parse_round_trip(spec in arb_machine_spec(6, 6, 6, 12)) {
        let m = build_machine(&spec);
        let text = mdl::print(&m);
        let (m2, _) = mdl::parse_machine(&text)
            .unwrap_or_else(|e| panic!("reparse failed: {e}\n{text}"));
        prop_assert_eq!(m, m2);
    }

    #[test]
    fn reduced_machines_round_trip_too(spec in arb_machine_spec(5, 4, 5, 8)) {
        let m = build_machine(&spec);
        let red = reduce(&m, Objective::ResUses);
        let text = mdl::print(&red.reduced);
        let (back, _) = mdl::parse_machine(&text).expect("reduced machines print parseably");
        prop_assert!(verify_equivalence(&m, &back).is_ok());
    }
}

#[test]
fn model_machines_round_trip() {
    for m in rmd_machine::models::all_machines() {
        let text = mdl::print(&m);
        let (m2, _) = mdl::parse_machine(&text)
            .unwrap_or_else(|e| panic!("{}: {e}", m.name()));
        assert_eq!(m, m2, "{} round-trip", m.name());
    }
}

#[test]
fn parse_errors_carry_positions() {
    let bad = "machine \"x\" {\n  resources { r; }\n  op a { use r @ }\n}";
    let e = mdl::parse(bad).unwrap_err();
    assert_eq!(e.span().line, 3, "{e}");
}
