//! The two internal representations (discrete / bitvector), the two
//! schedule forms (linear / modulo), and the two machine descriptions
//! (original / reduced) must all answer every query identically.

use proptest::prelude::*;
use rmd_core::{reduce, Objective};
use rmd_integration::{arb_machine_spec, build_machine, Lcg};
use rmd_machine::{MachineDescription, OpId};
use rmd_query::{
    BitvecModule, ContentionQuery, DiscreteModule, ModuloBitvecModule, ModuloDiscreteModule,
    OpInstance, WordLayout,
};

/// Drives a deterministic check/assign/free script against a set of
/// modules and asserts identical answers throughout.
fn drive_identically(machine: &MachineDescription, modules: &mut [Box<dyn ContentionQuery>], steps: u32, seed: u64) {
    let mut rng = Lcg(seed);
    let n = machine.num_operations() as u64;
    let mut live: Vec<(OpInstance, OpId, u32)> = Vec::new();
    let mut next_inst = 0u32;
    for step in 0..steps {
        let op = OpId(rng.below(n) as u32);
        let cycle = (step / 3) + rng.below(6) as u32;
        let answers: Vec<bool> = modules.iter_mut().map(|m| m.check(op, cycle)).collect();
        assert!(
            answers.windows(2).all(|w| w[0] == w[1]),
            "divergent check({op:?}, {cycle}): {answers:?}"
        );
        if answers[0] {
            for m in modules.iter_mut() {
                m.assign(OpInstance(next_inst), op, cycle);
            }
            live.push((OpInstance(next_inst), op, cycle));
            next_inst += 1;
        }
        if live.len() > 6 {
            let idx = rng.below(live.len() as u64) as usize;
            let (i, o, c) = live.remove(idx);
            for m in modules.iter_mut() {
                m.free(i, o, c);
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn linear_modules_agree_across_representations_and_reductions(
        spec in arb_machine_spec(5, 4, 5, 8),
        seed in any::<u64>(),
    ) {
        let m = build_machine(&spec);
        let red = reduce(&m, Objective::ResUses);
        let k = (64 / red.reduced.num_resources() as u32).clamp(1, 8);
        let mut modules: Vec<Box<dyn ContentionQuery>> = vec![
            Box::new(DiscreteModule::new(&m)),
            Box::new(BitvecModule::new(&m, WordLayout::with_k(64, 1))),
            Box::new(DiscreteModule::new(&red.reduced)),
            Box::new(BitvecModule::new(&red.reduced, WordLayout::with_k(64, k))),
        ];
        drive_identically(&m, &mut modules, 60, seed);
    }

    #[test]
    fn modulo_modules_agree_across_representations_and_reductions(
        spec in arb_machine_spec(5, 4, 5, 8),
        seed in any::<u64>(),
        ii_extra in 0u32..6,
    ) {
        let m = build_machine(&spec);
        let red = reduce(&m, Objective::ResUses);
        // II large enough that every op fits (no self-overlap): use the
        // longest table.
        let ii = m.max_table_length().max(1) + ii_extra;
        let k = (64 / red.reduced.num_resources() as u32).clamp(1, 8);
        let k0 = (64 / m.num_resources() as u32).clamp(1, 8);
        let mut modules: Vec<Box<dyn ContentionQuery>> = vec![
            Box::new(ModuloDiscreteModule::new(&m, ii)),
            Box::new(ModuloBitvecModule::new(&m, ii, WordLayout::with_k(64, k0))),
            Box::new(ModuloDiscreteModule::new(&red.reduced, ii)),
            Box::new(ModuloBitvecModule::new(&red.reduced, ii, WordLayout::with_k(64, k))),
        ];
        drive_identically(&m, &mut modules, 60, seed);
    }

    #[test]
    fn assign_free_evicts_identically_everywhere(
        spec in arb_machine_spec(4, 3, 4, 6),
        seed in any::<u64>(),
    ) {
        let m = build_machine(&spec);
        let red = reduce(&m, Objective::ResUses);
        let mut a: Box<dyn ContentionQuery> = Box::new(DiscreteModule::new(&m));
        let mut b: Box<dyn ContentionQuery> =
            Box::new(BitvecModule::new(&red.reduced, WordLayout::with_k(64, 1)));
        let mut rng = Lcg(seed);
        let n = m.num_operations() as u64;
        let mut live_a: std::collections::HashSet<u32> = Default::default();
        for step in 0..40u32 {
            let op = OpId(rng.below(n) as u32);
            let cycle = step / 2 + rng.below(4) as u32;
            let mut ea = a.assign_free(OpInstance(step), op, cycle);
            let mut eb = b.assign_free(OpInstance(step), op, cycle);
            ea.sort();
            eb.sort();
            prop_assert_eq!(&ea, &eb, "divergent evictions at step {}", step);
            for e in ea {
                live_a.remove(&e.0);
            }
            live_a.insert(step);
            prop_assert_eq!(a.num_scheduled(), live_a.len());
            prop_assert_eq!(b.num_scheduled(), live_a.len());
        }
    }
}

#[test]
fn update_mode_matches_discrete_after_transition() {
    // A fixed scenario that forces the bitvector module through its
    // optimistic->update transition and continues afterwards.
    let m = rmd_machine::models::example_machine();
    let b_op = m.op_by_name("B").unwrap();
    let a_op = m.op_by_name("A").unwrap();
    let mut d: Box<dyn ContentionQuery> = Box::new(DiscreteModule::new(&m));
    let mut v: Box<dyn ContentionQuery> = Box::new(BitvecModule::new(&m, WordLayout::with_k(64, 4)));
    for (i, (op, cycle)) in [(b_op, 0u32), (b_op, 1), (a_op, 0), (b_op, 5), (b_op, 6)]
        .into_iter()
        .enumerate()
    {
        let mut ea = d.assign_free(OpInstance(i as u32), op, cycle);
        let mut eb = v.assign_free(OpInstance(i as u32), op, cycle);
        ea.sort();
        eb.sort();
        assert_eq!(ea, eb, "step {i}");
    }
    for cycle in 0..12 {
        assert_eq!(d.check(a_op, cycle), v.check(a_op, cycle), "A @ {cycle}");
        assert_eq!(d.check(b_op, cycle), v.check(b_op, cycle), "B @ {cycle}");
    }
}
