//! The paper's end-to-end check: schedules produced with reduced machine
//! descriptions are identical to those produced with the original, and
//! always valid *against the original*.

use rmd_core::{reduce, Objective};
use rmd_loops::{suite, OpSet};
use rmd_machine::models::cydra5_subset;
use rmd_query::WordLayout;
use rmd_sched::{mii, validate, ImsConfig, IterativeModuloScheduler, Representation};

#[test]
fn identical_schedules_regardless_of_description() {
    // The paper: "we also verified that precisely the same schedules
    // were produced regardless of the machine description used by the
    // compiler" (on a 1327-loop suite; a 150-loop sample keeps this test
    // quick while covering all kernel shapes).
    let original = cydra5_subset();
    let ops = OpSet::for_cydra_subset(&original);
    let loops = suite(&ops, 150, 0xC5);

    let red_disc = reduce(&original, Objective::ResUses);
    let k = (64 / red_disc.reduced.num_resources() as u32).max(1);
    let red_bv = reduce(&original, Objective::KCycleWord { k });
    let k_fit = k.min((64 / red_bv.reduced.num_resources() as u32).max(1));

    let ims = IterativeModuloScheduler::new(ImsConfig::default());
    for l in &loops {
        let m = mii::mii(&l.graph, &original);
        let a = ims
            .schedule_with_mii(&l.graph, &original, Representation::Discrete, m)
            .unwrap_or_else(|e| panic!("{}: {e}", l.name));
        let b = ims
            .schedule_with_mii(&l.graph, &red_disc.reduced, Representation::Discrete, m)
            .unwrap_or_else(|e| panic!("{}: {e}", l.name));
        let c = ims
            .schedule_with_mii(
                &l.graph,
                &red_bv.reduced,
                Representation::Bitvec(WordLayout::with_k(64, k_fit)),
                m,
            )
            .unwrap_or_else(|e| panic!("{}: {e}", l.name));
        assert_eq!(a.ii, b.ii, "{}", l.name);
        assert_eq!(a.times, b.times, "{}", l.name);
        assert_eq!(a.ii, c.ii, "{}", l.name);
        assert_eq!(a.times, c.times, "{}", l.name);

        // Schedules from the *reduced* description validate against the
        // *original* machine — the equivalence claim end to end.
        validate(&l.graph, &original, &b).unwrap_or_else(|e| panic!("{}: {e}", l.name));
        validate(&l.graph, &original, &c).unwrap_or_else(|e| panic!("{}: {e}", l.name));
    }
}

#[test]
fn reduced_description_does_less_query_work() {
    let original = cydra5_subset();
    let ops = OpSet::for_cydra_subset(&original);
    let loops = suite(&ops, 100, 7);
    let red = reduce(&original, Objective::KCycleWord { k: 4 });
    let k_fit = (64 / red.reduced.num_resources() as u32).clamp(1, 4);

    let ims = IterativeModuloScheduler::new(ImsConfig::default());
    let mut orig_units = 0u64;
    let mut red_units = 0u64;
    for l in &loops {
        let m = mii::mii(&l.graph, &original);
        let a = ims
            .schedule_with_mii(&l.graph, &original, Representation::Discrete, m)
            .unwrap();
        let b = ims
            .schedule_with_mii(
                &l.graph,
                &red.reduced,
                Representation::Bitvec(WordLayout::with_k(64, k_fit)),
                m,
            )
            .unwrap();
        orig_units += a.counters.total_units();
        red_units += b.counters.total_units();
    }
    let speedup = orig_units as f64 / red_units as f64;
    assert!(
        speedup > 1.5,
        "expected a clear work reduction, got {speedup:.2}x ({orig_units} vs {red_units})"
    );
}

#[test]
fn every_suite_loop_schedules_and_validates() {
    let machine = cydra5_subset();
    let ops = OpSet::for_cydra_subset(&machine);
    let loops = suite(&ops, 200, 99);
    let ims = IterativeModuloScheduler::new(ImsConfig::default());
    for l in &loops {
        let r = ims
            .schedule(&l.graph, &machine, Representation::Discrete)
            .unwrap_or_else(|e| panic!("{}: {e}", l.name));
        validate(&l.graph, &machine, &r).unwrap_or_else(|e| panic!("{}: {e}", l.name));
        assert!(r.ii >= r.mii);
    }
}

#[test]
fn budget_trades_quality_for_decisions() {
    let machine = cydra5_subset();
    let ops = OpSet::for_cydra_subset(&machine);
    let loops = suite(&ops, 120, 0xBEEF);
    let tight = IterativeModuloScheduler::new(ImsConfig {
        budget_ratio: 1.0,
        ..ImsConfig::default()
    });
    let roomy = IterativeModuloScheduler::new(ImsConfig::default());
    let mut ii_tight = 0u64;
    let mut ii_roomy = 0u64;
    for l in &loops {
        ii_tight += u64::from(tight.schedule(&l.graph, &machine, Representation::Discrete).unwrap().ii);
        ii_roomy += u64::from(roomy.schedule(&l.graph, &machine, Representation::Discrete).unwrap().ii);
    }
    assert!(
        ii_roomy <= ii_tight,
        "6N budget must not schedule worse than 1N ({ii_roomy} vs {ii_tight})"
    );
}

#[test]
fn alternative_scheduling_balances_ports_and_validates() {
    use rmd_machine::models::cydra5_alt_groups;
    let m = cydra5_subset();
    let groups = cydra5_alt_groups(&m);
    let load0 = m.op_by_name("load.w.0").unwrap();
    let fadd = m.op_by_name("fadd").unwrap();
    // Four port-0 loads feeding two adds: fixed port assignment forces
    // II = 4 (mem0_in), balanced ports allow II = 2.
    let mut g = rmd_sched::DepGraph::new();
    for _ in 0..2 {
        let l0 = g.add_node(load0);
        let l1 = g.add_node(load0);
        let a = g.add_node(fadd);
        g.add_edge(l0, a, 21, 0, rmd_sched::DepKind::Flow);
        g.add_edge(l1, a, 21, 0, rmd_sched::DepKind::Flow);
    }
    let ims = IterativeModuloScheduler::new(ImsConfig::default());
    let fixed = ims.schedule(&g, &m, Representation::Discrete).unwrap();
    let alt = ims
        .schedule_with_alternatives(&g, &m, &groups, Representation::Discrete, 2)
        .unwrap();
    assert!(alt.ii < fixed.ii, "{} !< {}", alt.ii, fixed.ii);
    validate(&g, &m, &alt).unwrap();
    // Chosen ops must be alternatives of the base ops.
    for v in g.nodes() {
        let base = g.op(v);
        assert!(
            groups.alternatives_of(base).contains(&alt.chosen[v.index()]),
            "chosen op must come from the base's group"
        );
    }
}
