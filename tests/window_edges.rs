//! Edge-case coverage for `check_window` / `first_free_in`, pinned
//! across all five query backends (discrete, bitvec, compiled,
//! modulo-discrete, modulo-bitvec).
//!
//! The window contract (rmd-query traits): bit `i` of
//! `check_window(op, start, len)` is set iff `check(op, start + i)`
//! would say free, `len` is clamped to 64, cycles past `u32::MAX` read
//! as busy, and `first_free_in` processes longer windows in 64-cycle
//! chunks. The cases here sit exactly on those seams: zero-length
//! windows, the 64-cycle chunk boundary, windows that start far beyond
//! the schedule horizon, and windows that run off the end of the cycle
//! domain.

use rmd_machine::{MachineBuilder, MachineDescription, OpId};
use rmd_query::{
    BitvecModule, CompiledModule, ContentionQuery, DiscreteModule, ModuloBitvecModule,
    ModuloDiscreteModule, OpInstance, WordLayout,
};

/// A machine built for window probing: `nop` reserves one resource in
/// cycle 0 only (its checks never add a cycle offset, so it is safe at
/// `u32::MAX`), and `div` holds the divider for 8 straight cycles, so a
/// run of `div` placements builds an arbitrarily long busy prefix.
fn window_machine() -> MachineDescription {
    let mut b = MachineBuilder::new("window-edges");
    let alu = b.resource("alu");
    let div = b.resource("divider");
    b.operation("nop").usage(alu, 0).finish();
    b.operation("div").usage(alu, 0).span(div, 0, 8).finish();
    b.build().expect("test machine builds")
}

/// One of each of the five bench backends over `m`. The modulo modules
/// use the II every bench workload uses: the longest reservation table.
fn backends(m: &MachineDescription) -> Vec<(&'static str, Box<dyn ContentionQuery>)> {
    let layout = WordLayout::widest(64, m.num_resources());
    let ii = m.max_table_length().max(1);
    vec![
        ("discrete", Box::new(DiscreteModule::new(m))),
        ("bitvec", Box::new(BitvecModule::new(m, layout))),
        ("compiled", Box::new(CompiledModule::new(m, layout))),
        (
            "modulo_discrete",
            Box::new(ModuloDiscreteModule::new(m, ii)),
        ),
        (
            "modulo_bitvec",
            Box::new(ModuloBitvecModule::new(m, ii, layout)),
        ),
    ]
}

/// The scalar reference for `check_window`: assemble the mask from
/// individual `check` calls, clamping to 64 and treating cycles past
/// `u32::MAX` as busy.
fn scalar_mask(q: &mut dyn ContentionQuery, op: OpId, start: u32, len: u32) -> u64 {
    let mut mask = 0u64;
    for i in 0..len.min(64) {
        let Some(cycle) = start.checked_add(i) else {
            break;
        };
        if q.check(op, cycle) {
            mask |= 1u64 << i;
        }
    }
    mask
}

/// The scalar reference for `first_free_in` over the full (unclamped)
/// window.
fn scalar_first_free(
    q: &mut dyn ContentionQuery,
    op: OpId,
    start: u32,
    len: u32,
) -> Option<u32> {
    let end = u64::from(start) + u64::from(len);
    (u64::from(start)..end)
        .take_while(|&c| c <= u64::from(u32::MAX))
        .map(|c| c as u32)
        .find(|&c| q.check(op, c))
}

/// Asserts that the backend's window answers equal its own scalar
/// reference at `(op, start, len)` — the conformance every edge case
/// below reduces to.
fn assert_conforms(name: &str, q: &mut dyn ContentionQuery, op: OpId, start: u32, len: u32) {
    let want_mask = scalar_mask(q, op, start, len);
    let got_mask = q.check_window(op, start, len);
    assert_eq!(
        got_mask, want_mask,
        "{name}: check_window({op:?}, {start}, {len}) = {got_mask:#x}, \
         scalar reference assembles {want_mask:#x}"
    );
    let want_first = scalar_first_free(q, op, start, len);
    let got_first = q.first_free_in(op, start, len);
    assert_eq!(
        got_first, want_first,
        "{name}: first_free_in({op:?}, {start}, {len}) disagrees with the scalar scan"
    );
}

#[test]
fn zero_length_windows_are_empty_and_find_nothing() {
    let m = window_machine();
    let nop = m.op_by_name("nop").unwrap();
    let div = m.op_by_name("div").unwrap();
    for (name, mut q) in backends(&m) {
        for start in [0u32, 1, 63, 64, 65, 10_000, u32::MAX] {
            for op in [nop, div] {
                assert_eq!(
                    q.check_window(op, start, 0),
                    0,
                    "{name}: zero-length window at {start} must be all-busy"
                );
                assert_eq!(
                    q.first_free_in(op, start, 0),
                    None,
                    "{name}: zero-length window at {start} must find nothing"
                );
            }
        }
    }
}

#[test]
fn window_length_clamps_to_64() {
    let m = window_machine();
    let div = m.op_by_name("div").unwrap();
    for (name, mut q) in backends(&m) {
        q.assign(OpInstance(0), div, 3);
        let clamped = q.check_window(div, 0, 64);
        for len in [65u32, 100, u32::MAX] {
            let got = q.check_window(div, 0, len);
            assert_eq!(
                got, clamped,
                "{name}: check_window len {len} must clamp to the 64-cycle mask"
            );
        }
        assert_conforms(name, q.as_mut(), div, 0, 64);
    }
}

/// A busy prefix longer than one 64-cycle chunk: `first_free_in` must
/// cross the chunk boundary and land on the first free cycle, and
/// windows ending exactly at the boundary must come back empty. Linear
/// backends only — a modulo table repeats with period II, so a busy
/// prefix cannot outgrow one chunk there (the modulo chunk crossing is
/// exercised in `far_beyond_horizon_windows_conform`).
#[test]
fn first_free_crosses_the_chunk_boundary() {
    let m = window_machine();
    let div = m.op_by_name("div").unwrap();
    let layout = WordLayout::widest(64, m.num_resources());
    let linear: Vec<(&str, Box<dyn ContentionQuery>)> = vec![
        ("discrete", Box::new(DiscreteModule::new(&m))),
        ("bitvec", Box::new(BitvecModule::new(&m, layout))),
        ("compiled", Box::new(CompiledModule::new(&m, layout))),
    ];
    for (name, mut q) in linear {
        // div holds the divider for 8 cycles, so placements at
        // 0, 8, …, 64 leave every cycle in 0..=71 busy; 72 is free.
        for (i, t) in (0..=64).step_by(8).enumerate() {
            q.assign(OpInstance(i as u32), div, t);
        }
        assert_eq!(
            q.first_free_in(div, 0, 200),
            Some(72),
            "{name}: the first free cycle lies in the second 64-cycle chunk"
        );
        assert_eq!(
            q.first_free_in(div, 0, 72),
            None,
            "{name}: a window ending exactly at the busy/free boundary is full"
        );
        assert_eq!(
            q.first_free_in(div, 0, 73),
            Some(72),
            "{name}: widening the window by one cycle exposes the free slot"
        );
        // The chunk-boundary masks match the scalar reference too.
        for start in [0u32, 63, 64, 65, 71, 72] {
            assert_conforms(name, q.as_mut(), div, start, 64);
        }
    }
}

/// Windows starting far past the schedule horizon: linear backends see
/// nothing scheduled out there (all-free masks), modulo backends see
/// the II-periodic image of the one placement. Both must match their
/// own scalar reference, including across a >64-cycle chunked scan.
#[test]
fn far_beyond_horizon_windows_conform() {
    let m = window_machine();
    let nop = m.op_by_name("nop").unwrap();
    let div = m.op_by_name("div").unwrap();
    for (name, mut q) in backends(&m) {
        q.assign(OpInstance(0), div, 2);
        for start in [1_000u32, 65_536, 1_000_000] {
            for op in [nop, div] {
                assert_conforms(name, q.as_mut(), op, start, 64);
                // A 130-cycle window forces the chunked first_free_in
                // path far beyond anything ever assigned.
                let want = scalar_first_free(q.as_mut(), op, start, 130);
                assert_eq!(
                    q.first_free_in(op, start, 130),
                    want,
                    "{name}: chunked scan at {start} disagrees with scalar"
                );
            }
        }
        // Linear backends must report the out-of-horizon window fully
        // free; this pins the semantics, not just self-conformance.
        if !name.starts_with("modulo") {
            assert_eq!(
                q.check_window(div, 1_000_000, 64),
                u64::MAX,
                "{name}: nothing is scheduled a million cycles out"
            );
        }
    }
}

/// Windows that run off the end of the cycle domain: cycles past
/// `u32::MAX` read as busy, so only the in-domain prefix of the mask
/// can have bits set, and `first_free_in` never reports a cycle it
/// could not represent. `nop`'s reservation table is a single cycle-0
/// usage, so its checks are well-defined at `u32::MAX` itself.
#[test]
fn windows_saturate_at_the_cycle_domain_boundary() {
    let m = window_machine();
    let nop = m.op_by_name("nop").unwrap();
    for (name, mut q) in backends(&m) {
        // Empty schedule: the four representable cycles are free, the
        // sixty past-the-end bits are busy.
        let start = u32::MAX - 3;
        let got = q.check_window(nop, start, 64);
        assert_eq!(
            got, 0b1111,
            "{name}: only the 4 in-domain cycles of [{start}, +64) can be free"
        );
        assert_eq!(
            q.first_free_in(nop, start, 64),
            Some(start),
            "{name}: the first in-domain cycle is free"
        );
        // A window that *starts* on the last representable cycle.
        assert_eq!(q.check_window(nop, u32::MAX, 64), 0b1, "{name}");
        assert_eq!(q.first_free_in(nop, u32::MAX, 64), Some(u32::MAX), "{name}");
        assert_conforms(name, q.as_mut(), nop, start, 64);
    }
}
